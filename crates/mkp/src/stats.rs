//! Instance statistics: the structural characteristics (size, tightness,
//! profit–weight correlation, weight dispersion) that define a benchmark
//! class. The generators' tests assert their output matches the published
//! class profile through these numbers, and the bench harness prints them
//! so every experiment records *what kind* of instance it ran on.

use crate::instance::Instance;

/// Summary statistics of one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceStats {
    /// Items.
    pub n: usize,
    /// Constraints.
    pub m: usize,
    /// Mean capacity tightness `b_i / Σ_j a_ij`.
    pub mean_tightness: f64,
    /// Pearson correlation between item profit and total item weight.
    pub profit_weight_correlation: f64,
    /// Coefficient of variation of the weights (σ/μ).
    pub weight_cv: f64,
    /// Mean items per knapsack at mean weights: `mean_tightness · n` —
    /// a rough expected solution cardinality.
    pub expected_cardinality: f64,
}

/// Pearson correlation coefficient of two equal-length samples
/// (0 when either variance vanishes).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson over unequal lengths");
    if xs.len() < 2 {
        return 0.0;
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (mx, my) = (mean(xs), mean(ys));
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// Profit–weight-mass correlation of an instance.
pub fn profit_weight_correlation(inst: &Instance) -> f64 {
    let xs: Vec<f64> = (0..inst.n())
        .map(|j| inst.item_weight_sum(j) as f64)
        .collect();
    let ys: Vec<f64> = (0..inst.n()).map(|j| inst.profit(j) as f64).collect();
    pearson(&xs, &ys)
}

/// Compute the full statistics summary.
pub fn instance_stats(inst: &Instance) -> InstanceStats {
    let tightness = inst.tightness();
    let mean_tightness = tightness.iter().sum::<f64>() / tightness.len() as f64;

    let weights: Vec<f64> = (0..inst.m())
        .flat_map(|i| {
            inst.constraint_row(i)
                .iter()
                .map(|&w| w as f64)
                .collect::<Vec<_>>()
        })
        .collect();
    let wmean = weights.iter().sum::<f64>() / weights.len() as f64;
    let wvar = weights.iter().map(|w| (w - wmean).powi(2)).sum::<f64>() / weights.len() as f64;
    let weight_cv = if wmean > 0.0 {
        wvar.sqrt() / wmean
    } else {
        0.0
    };

    InstanceStats {
        n: inst.n(),
        m: inst.m(),
        mean_tightness,
        profit_weight_correlation: profit_weight_correlation(inst),
        weight_cv,
        expected_cardinality: mean_tightness * inst.n() as f64,
    }
}

impl std::fmt::Display for InstanceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{} tight={:.2} corr={:.2} cv={:.2} ~card={:.0}",
            self.m,
            self.n,
            self.mean_tightness,
            self.profit_weight_correlation,
            self.weight_cv,
            self.expected_cardinality
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{chu_beasley_instance, gk_instance, uncorrelated_instance, GkSpec};

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0); // zero variance
        assert_eq!(pearson(&[1.0], &[1.0]), 0.0); // too short
    }

    #[test]
    #[should_panic(expected = "unequal lengths")]
    fn pearson_rejects_length_mismatch() {
        pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn stats_reflect_generator_class() {
        let gk = gk_instance(
            "g",
            GkSpec {
                n: 200,
                m: 10,
                tightness: 0.5,
                seed: 1,
            },
        );
        let s = instance_stats(&gk);
        assert_eq!(s.n, 200);
        assert_eq!(s.m, 10);
        assert!((s.mean_tightness - 0.5).abs() < 0.01);
        assert!(s.profit_weight_correlation > 0.3, "GK must correlate");

        let un = uncorrelated_instance("u", 200, 10, 0.5, 1);
        let su = instance_stats(&un);
        assert!(
            su.profit_weight_correlation.abs() < 0.2,
            "uncorrelated class"
        );

        let cb = chu_beasley_instance("c", 200, 10, 0.25, 1);
        let sc = instance_stats(&cb);
        assert!((sc.mean_tightness - 0.25).abs() < 0.02);
        assert!(sc.profit_weight_correlation > s.profit_weight_correlation - 0.2);
    }

    #[test]
    fn expected_cardinality_tracks_tightness() {
        let tight = gk_instance(
            "t",
            GkSpec {
                n: 100,
                m: 5,
                tightness: 0.25,
                seed: 2,
            },
        );
        let loose = gk_instance(
            "l",
            GkSpec {
                n: 100,
                m: 5,
                tightness: 0.75,
                seed: 2,
            },
        );
        assert!(
            instance_stats(&tight).expected_cardinality
                < instance_stats(&loose).expected_cardinality
        );
    }

    #[test]
    fn display_is_compact() {
        let s = instance_stats(&uncorrelated_instance("d", 50, 5, 0.5, 3));
        let text = s.to_string();
        assert!(text.contains("5x50"));
        assert!(text.contains("tight=0.5"));
    }
}
