//! Cheap combinatorial upper bounds.
//!
//! The Dantzig bound solves the LP relaxation of a *single* knapsack
//! constraint greedily; taking the minimum over all `m` constraints yields a
//! valid (if loose) upper bound for the MKP in O(m · n log n). The exact
//! solver uses it for quick pruning before paying for a full LP solve, and
//! the benches use it as the fallback reference when the LP is not run.

use crate::instance::Instance;

/// Dantzig (fractional greedy) upper bound for constraint `i` alone.
///
/// Items are taken in descending `c_j / a_ij` order until the capacity is
/// exhausted; the last item is taken fractionally. Items with `a_ij = 0`
/// contribute their full profit.
pub fn dantzig_bound_single(inst: &Instance, i: usize) -> f64 {
    let row = inst.constraint_row(i);
    let mut order: Vec<usize> = (0..inst.n()).collect();
    order.sort_by(|&a, &b| {
        let ra = ratio(inst.profit(a), row[a]);
        let rb = ratio(inst.profit(b), row[b]);
        rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut remaining = inst.capacity(i);
    let mut bound = 0.0f64;
    for j in order {
        let a = row[j];
        if a == 0 {
            bound += inst.profit(j) as f64;
        } else if a <= remaining {
            bound += inst.profit(j) as f64;
            remaining -= a;
        } else {
            bound += inst.profit(j) as f64 * remaining as f64 / a as f64;
            break;
        }
    }
    bound
}

#[inline]
fn ratio(c: i64, a: i64) -> f64 {
    if a == 0 {
        f64::INFINITY
    } else {
        c as f64 / a as f64
    }
}

/// Minimum Dantzig bound across all constraints — a valid MKP upper bound.
pub fn dantzig_bound(inst: &Instance) -> f64 {
    (0..inst.m())
        .map(|i| dantzig_bound_single(inst, i))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Ratios;
    use crate::generate::uncorrelated_instance;
    use crate::greedy::greedy;

    #[test]
    fn single_constraint_hand_example() {
        // profits 10, 6; weights 5, 4; cap 7: take item 0 (ratio 2), then
        // 2/4 of item 1 → 10 + 3 = 13.
        let inst = Instance::new("d", 2, 1, vec![10, 6], vec![5, 4], vec![7]).unwrap();
        assert!((dantzig_bound_single(&inst, 0) - 13.0).abs() < 1e-9);
    }

    #[test]
    fn integral_fill_is_exact() {
        // Everything fits exactly: bound = total profit.
        let inst = Instance::new("f", 2, 1, vec![4, 5], vec![3, 4], vec![7]).unwrap();
        assert!((dantzig_bound(&inst) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn zero_weight_items_count_fully() {
        let inst = Instance::new("z", 2, 1, vec![7, 5], vec![0, 10], vec![5]).unwrap();
        assert!((dantzig_bound_single(&inst, 0) - (7.0 + 2.5)).abs() < 1e-9);
    }

    #[test]
    fn multi_constraint_takes_minimum() {
        let inst = Instance::new(
            "m",
            2,
            2,
            vec![10, 10],
            vec![
                1, 1, // loose
                10, 10, // tight
            ],
            vec![100, 10],
        )
        .unwrap();
        // Constraint 0 allows everything (bound 20); constraint 1 allows one
        // item (bound 10). MKP bound = 10.
        assert!((dantzig_bound(&inst) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn bound_dominates_greedy_value() {
        for seed in 0..20 {
            let inst = uncorrelated_instance("b", 50, 5, 0.5, seed);
            let ratios = Ratios::new(&inst);
            let sol = greedy(&inst, &ratios);
            assert!(
                dantzig_bound(&inst) + 1e-9 >= sol.value() as f64,
                "bound below feasible value on seed {seed}"
            );
        }
    }
}
