//! Chu–Beasley-style instance generator.
//!
//! The OR-Library class that superseded the suites the paper used: weights
//! `a_ij ~ U[0, 1000]`, capacities `b_i = tightness · Σ_j a_ij` with
//! tightness ∈ {0.25, 0.5, 0.75}, and profits `c_j = Σ_i a_ij / m + 500·u_j`
//! with `u_j ~ U(0, 1)` — the same correlated family as the GK construction
//! but swept over the canonical tightness grid {0.25, 0.5, 0.75} at the
//! `mknapcb` sizes. Included as the natural "one suite later" evaluation
//! target for the reproduced algorithm.

use super::validate_generated;
use crate::instance::Instance;
use crate::rng::Xoshiro256;

/// Generate one Chu–Beasley-style instance.
pub fn chu_beasley_instance(
    name: impl Into<String>,
    n: usize,
    m: usize,
    tightness: f64,
    seed: u64,
) -> Instance {
    assert!(n >= 2 && m >= 1, "degenerate CB spec");
    assert!(
        (0.05..=0.95).contains(&tightness),
        "tightness {tightness} outside sensible range"
    );
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut weights = vec![0i64; n * m];
    for w in weights.iter_mut() {
        // U[0,1000] in the original; keep ≥ 1 so no item is free.
        *w = rng.range_inclusive(1, 1000) as i64;
    }
    let mut profits = Vec::with_capacity(n);
    for j in 0..n {
        let mass: i64 = (0..m).map(|i| weights[i * n + j]).sum();
        // Full-strength correlation (GK divides the noise term's weight).
        let noise = (500.0 * rng.next_f64()).round() as i64;
        profits.push((mass / m as i64 + noise).max(1));
    }
    let mut capacities = Vec::with_capacity(m);
    for i in 0..m {
        let total: i64 = weights[i * n..(i + 1) * n].iter().sum();
        let cap = (tightness * total as f64).round() as i64;
        let max_w = *weights[i * n..(i + 1) * n].iter().max().unwrap();
        capacities.push(cap.max(max_w));
    }
    let inst =
        Instance::new(name, n, m, profits, weights, capacities).expect("generator data valid");
    debug_assert!(validate_generated(&inst).is_ok());
    inst
}

/// A 9-instance OR-Library-shaped mini suite: n ∈ {100, 250, 500} ×
/// tightness ∈ {0.25, 0.50, 0.75} at m = 10 (the `mknapcb` grid's first
/// column), used by the extension benchmarks.
pub fn cb_suite(seed: u64) -> Vec<Instance> {
    let mut out = Vec::new();
    for (ni, &n) in [100usize, 250, 500].iter().enumerate() {
        for (ti, &t) in [0.25f64, 0.50, 0.75].iter().enumerate() {
            out.push(chu_beasley_instance(
                format!("CB_{n}x10_t{:02}", (t * 100.0) as u32),
                n,
                10,
                t,
                seed ^ ((ni * 3 + ti) as u64) << 8,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Ratios;
    use crate::greedy::greedy;

    #[test]
    fn generates_valid_instances() {
        let inst = chu_beasley_instance("cb", 100, 10, 0.5, 1);
        validate_generated(&inst).unwrap();
        assert_eq!(inst.n(), 100);
        assert_eq!(inst.m(), 10);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(
            chu_beasley_instance("cb", 50, 5, 0.25, 7),
            chu_beasley_instance("cb", 50, 5, 0.25, 7)
        );
        assert_ne!(
            chu_beasley_instance("cb", 50, 5, 0.25, 7),
            chu_beasley_instance("cb", 50, 5, 0.25, 8)
        );
    }

    #[test]
    fn profits_are_clearly_correlated() {
        // The CB construction correlates profits with weight mass; the
        // coefficient must be clearly positive (vs ~0 for the uncorrelated
        // class).
        let corr = |inst: &Instance| {
            let xs: Vec<f64> = (0..inst.n())
                .map(|j| inst.item_weight_sum(j) as f64)
                .collect();
            let ys: Vec<f64> = (0..inst.n()).map(|j| inst.profit(j) as f64).collect();
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            let (mx, my) = (mean(&xs), mean(&ys));
            let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
            let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
            let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
            cov / (vx.sqrt() * vy.sqrt())
        };
        let cb = chu_beasley_instance("cb", 300, 10, 0.5, 3);
        let un = super::super::uncorrelated_instance("u", 300, 10, 0.5, 3);
        assert!(corr(&cb) > 0.4, "CB correlation too weak: {}", corr(&cb));
        assert!(corr(&cb) > corr(&un) + 0.3);
    }

    #[test]
    fn tightness_respected() {
        for t in [0.25, 0.5, 0.75] {
            let inst = chu_beasley_instance("cb", 300, 5, t, 11);
            for got in inst.tightness() {
                assert!((got - t).abs() < 0.01, "tightness {got} far from {t}");
            }
        }
    }

    #[test]
    fn suite_shape() {
        let suite = cb_suite(0xCB);
        assert_eq!(suite.len(), 9);
        assert!(suite.iter().all(|i| i.m() == 10));
        for inst in &suite {
            validate_generated(inst).unwrap();
        }
        // Distinct instances throughout.
        for a in 0..suite.len() {
            for b in a + 1..suite.len() {
                assert_ne!(suite[a], suite[b]);
            }
        }
    }

    #[test]
    fn greedy_leaves_headroom() {
        // The class is supposed to be hard: greedy should sit clearly below
        // the LP-style profit sum ceiling.
        let inst = chu_beasley_instance("cb", 100, 10, 0.5, 13);
        let g = greedy(&inst, &Ratios::new(&inst));
        assert!(g.value() > 0);
        assert!(g.value() < inst.profit_sum());
    }
}
