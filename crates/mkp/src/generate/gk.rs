//! Glover–Kochenberger-style instance generator (Table 1 / Table 2 suites).
//!
//! Structure follows the construction used for the published MKP suites of
//! that family: weights `a_ij ~ U[1, 1000]`, capacities
//! `b_i = tightness · Σ_j a_ij`, and profits correlated with the weight mass
//! of the item, `c_j = round(Σ_i a_ij / m) + U[1, 500]`. The correlation is
//! what makes pure greedy weak and local search interesting; tightness
//! controls how many items fit.

use super::validate_generated;
use crate::instance::Instance;
use crate::rng::Xoshiro256;

/// Parameters for one GK-style instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GkSpec {
    /// Number of items.
    pub n: usize,
    /// Number of constraints.
    pub m: usize,
    /// Capacity tightness `b_i / Σ_j a_ij`, typically 0.25–0.75.
    pub tightness: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Generate a single GK-style instance.
pub fn gk_instance(name: impl Into<String>, spec: GkSpec) -> Instance {
    let GkSpec {
        n,
        m,
        tightness,
        seed,
    } = spec;
    assert!(n >= 2 && m >= 1, "degenerate GK spec");
    assert!(
        (0.05..=0.95).contains(&tightness),
        "tightness {tightness} outside sensible range"
    );
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut weights = vec![0i64; n * m];
    for w in weights.iter_mut() {
        *w = rng.range_inclusive(1, 1000) as i64;
    }
    let mut profits = Vec::with_capacity(n);
    for j in 0..n {
        let mass: i64 = (0..m).map(|i| weights[i * n + j]).sum();
        profits.push(mass / m as i64 + rng.range_inclusive(1, 500) as i64);
    }
    let mut capacities = Vec::with_capacity(m);
    for i in 0..m {
        let total: i64 = weights[i * n..(i + 1) * n].iter().sum();
        let cap = (tightness * total as f64).round() as i64;
        // Ensure every single item fits on its own (no degenerate items).
        let max_w = *weights[i * n..(i + 1) * n].iter().max().unwrap();
        capacities.push(cap.max(max_w));
    }
    let inst =
        Instance::new(name, n, m, profits, weights, capacities).expect("generator data valid");
    debug_assert!(validate_generated(&inst).is_ok());
    inst
}

/// The 24-instance Table 1 suite: groups of (m × n) sizes reconstructing the
/// grid of the paper's Glover–Kochenberger experiments (3/5/10/15/25
/// constraints × 100 items, plus 25×250 and 25×500), with tightness cycling
/// through 0.25 / 0.50 / 0.75 inside each group.
pub fn table1_suite() -> Vec<Instance> {
    const GROUPS: &[(usize, usize, usize)] = &[
        // (m, n, count) — probs 1–4, 5–8, 9–14, 15–17, 18–22, 23, 24
        (3, 100, 4),
        (5, 100, 4),
        (10, 100, 6),
        (15, 100, 3),
        (25, 100, 5),
        (25, 250, 1),
        (25, 500, 1),
    ];
    const TIGHTNESS: &[f64] = &[0.25, 0.50, 0.75];
    let mut out = Vec::new();
    let mut prob_nbr = 1usize;
    for &(m, n, count) in GROUPS {
        for k in 0..count {
            let spec = GkSpec {
                n,
                m,
                tightness: TIGHTNESS[k % TIGHTNESS.len()],
                seed: 0x6B50_0000 + prob_nbr as u64,
            };
            out.push(gk_instance(format!("GK{prob_nbr:02}_{m}x{n}"), spec));
            prob_nbr += 1;
        }
    }
    out
}

/// The five large MK01–MK05 instances used by Table 2 (mode comparison).
pub fn mk_suite() -> Vec<Instance> {
    const SPECS: &[(usize, usize, f64)] = &[
        (250, 10, 0.50),
        (250, 15, 0.50),
        (250, 25, 0.50),
        (500, 10, 0.50),
        (500, 25, 0.50),
    ];
    SPECS
        .iter()
        .enumerate()
        .map(|(k, &(n, m, t))| {
            gk_instance(
                format!("MK{:02}_{m}x{n}", k + 1),
                GkSpec {
                    n,
                    m,
                    tightness: t,
                    seed: 0x4D4B_0000 + k as u64,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gk_instance_is_valid() {
        let inst = gk_instance(
            "t",
            GkSpec {
                n: 50,
                m: 5,
                tightness: 0.5,
                seed: 1,
            },
        );
        assert_eq!(inst.n(), 50);
        assert_eq!(inst.m(), 5);
        validate_generated(&inst).unwrap();
    }

    #[test]
    fn gk_deterministic_in_seed() {
        let spec = GkSpec {
            n: 30,
            m: 3,
            tightness: 0.5,
            seed: 7,
        };
        assert_eq!(gk_instance("a", spec), gk_instance("a", spec));
        let other = GkSpec { seed: 8, ..spec };
        assert_ne!(gk_instance("a", spec), gk_instance("a", other));
    }

    #[test]
    fn gk_tightness_respected() {
        let inst = gk_instance(
            "t",
            GkSpec {
                n: 200,
                m: 4,
                tightness: 0.25,
                seed: 3,
            },
        );
        for t in inst.tightness() {
            assert!((t - 0.25).abs() < 0.01, "tightness {t} far from 0.25");
        }
    }

    #[test]
    fn gk_profits_correlated_with_weight_mass() {
        // Correlation coefficient between Σ_i a_ij and c_j should be clearly
        // positive (the construction adds mass/m to a uniform term).
        let inst = gk_instance(
            "c",
            GkSpec {
                n: 300,
                m: 10,
                tightness: 0.5,
                seed: 11,
            },
        );
        let xs: Vec<f64> = (0..inst.n())
            .map(|j| inst.item_weight_sum(j) as f64)
            .collect();
        let ys: Vec<f64> = (0..inst.n()).map(|j| inst.profit(j) as f64).collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (mx, my) = (mean(&xs), mean(&ys));
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
        let corr = cov / (vx.sqrt() * vy.sqrt());
        assert!(corr > 0.3, "profit-weight correlation {corr} too weak");
    }

    #[test]
    fn table1_suite_shape() {
        let suite = table1_suite();
        assert_eq!(suite.len(), 24);
        assert_eq!(suite[0].m(), 3);
        assert_eq!(suite[0].n(), 100);
        assert_eq!(suite[23].m(), 25);
        assert_eq!(suite[23].n(), 500);
        for inst in &suite {
            validate_generated(inst).unwrap();
        }
    }

    #[test]
    fn mk_suite_shape() {
        let suite = mk_suite();
        assert_eq!(suite.len(), 5);
        assert!(suite.iter().all(|i| i.n() >= 250));
        for inst in &suite {
            validate_generated(inst).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "tightness")]
    fn rejects_absurd_tightness() {
        gk_instance(
            "x",
            GkSpec {
                n: 10,
                m: 1,
                tightness: 1.5,
                seed: 0,
            },
        );
    }
}
