//! Very-large-instance generator (beyond the Chu–Beasley grid).
//!
//! Martins (arXiv 2405.15569) evaluates MKP heuristics on recurring
//! production workloads far past the classic benchmark sizes — hundreds of
//! constraints over thousands of items. This class reconstructs that regime:
//! weights `a_ij ~ U[1, 1000]`, capacities `b_i = tightness · Σ_j a_ij`, and
//! profits blending item weight mass with uniform noise under an explicit
//! `correlation` knob, `c_j = round(corr · mass_j/m) + U[1, 500]`. At
//! `correlation = 1` the class matches the GK construction; lower values
//! weaken the profit–weight coupling, which is where repair-style
//! construction heuristics earn their keep.
//!
//! Generation is a single O(n·m) pass with exactly-sized allocations, so
//! even the 100×2500 flagship shape stays in the low tens of milliseconds —
//! guarded by a budget test.

use super::validate_generated;
use crate::instance::Instance;
use crate::rng::Xoshiro256;

/// Parameters for one very-large instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LargeSpec {
    /// Number of items (thousands are the intended range).
    pub n: usize,
    /// Number of constraints (up to a few hundred).
    pub m: usize,
    /// Capacity tightness `b_i / Σ_j a_ij`, typically 0.25–0.75.
    pub tightness: f64,
    /// Profit–weight correlation strength in `[0, 1]`.
    pub correlation: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Generate a single very-large instance.
pub fn large_instance(name: impl Into<String>, spec: LargeSpec) -> Instance {
    let LargeSpec {
        n,
        m,
        tightness,
        correlation,
        seed,
    } = spec;
    assert!(n >= 2 && m >= 1, "degenerate large spec");
    assert!(
        (0.05..=0.95).contains(&tightness),
        "tightness {tightness} outside sensible range"
    );
    assert!(
        (0.0..=1.0).contains(&correlation),
        "correlation {correlation} outside [0, 1]"
    );
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut weights = vec![0i64; n * m];
    // Row-major by constraint, matching `Instance::new`'s layout; one
    // sequential pass keeps the generator cache-friendly at 100×2500.
    for w in weights.iter_mut() {
        *w = rng.range_inclusive(1, 1000) as i64;
    }
    let mut profits = Vec::with_capacity(n);
    for j in 0..n {
        let mass: i64 = (0..m).map(|i| weights[i * n + j]).sum();
        let correlated = (correlation * mass as f64 / m as f64).round() as i64;
        profits.push(correlated + rng.range_inclusive(1, 500) as i64);
    }
    let mut capacities = Vec::with_capacity(m);
    for i in 0..m {
        let row = &weights[i * n..(i + 1) * n];
        let total: i64 = row.iter().sum();
        let cap = (tightness * total as f64).round() as i64;
        // Every single item must fit on its own (no degenerate items).
        let max_w = *row.iter().max().unwrap();
        capacities.push(cap.max(max_w));
    }
    let inst =
        Instance::new(name, n, m, profits, weights, capacities).expect("generator data valid");
    debug_assert!(validate_generated(&inst).is_ok());
    inst
}

/// The very-large suite: the 100×2500 flagship plus scaled-down and
/// scaled-up companions, tightness cycling 0.25 / 0.50 / 0.75.
pub fn large_suite() -> Vec<Instance> {
    const SHAPES: &[(usize, usize)] = &[(2500, 100), (2500, 100), (2500, 100), (5000, 100)];
    const TIGHTNESS: &[f64] = &[0.25, 0.50, 0.75];
    SHAPES
        .iter()
        .enumerate()
        .map(|(k, &(n, m))| {
            large_instance(
                format!("XL{:02}_{m}x{n}", k + 1),
                LargeSpec {
                    n,
                    m,
                    tightness: TIGHTNESS[k % TIGHTNESS.len()],
                    correlation: 0.5,
                    seed: 0x4C47_0000 + k as u64,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flagship_spec(seed: u64) -> LargeSpec {
        LargeSpec {
            n: 2500,
            m: 100,
            tightness: 0.5,
            correlation: 0.5,
            seed,
        }
    }

    #[test]
    fn large_instance_is_valid_at_flagship_size() {
        let inst = large_instance("xl", flagship_spec(1));
        assert_eq!(inst.n(), 2500);
        assert_eq!(inst.m(), 100);
        validate_generated(&inst).unwrap();
    }

    #[test]
    fn large_deterministic_in_seed() {
        // Seeded reproducibility on a shape big enough to exercise the
        // whole pipeline, cheap enough to build twice.
        let spec = LargeSpec {
            n: 400,
            m: 20,
            tightness: 0.5,
            correlation: 0.5,
            seed: 7,
        };
        assert_eq!(large_instance("a", spec), large_instance("a", spec));
        let other = LargeSpec { seed: 8, ..spec };
        assert_ne!(large_instance("a", spec), large_instance("a", other));
    }

    #[test]
    fn large_tightness_within_bounds() {
        for t in [0.25, 0.5, 0.75] {
            let inst = large_instance(
                "t",
                LargeSpec {
                    n: 1000,
                    m: 30,
                    tightness: t,
                    correlation: 0.5,
                    seed: 3,
                },
            );
            for observed in inst.tightness() {
                assert!(
                    (observed - t).abs() < 0.01,
                    "tightness {observed} far from requested {t}"
                );
            }
        }
    }

    #[test]
    fn correlation_knob_steers_profit_weight_coupling() {
        let corr_of = |correlation: f64| -> f64 {
            let inst = large_instance(
                "c",
                LargeSpec {
                    n: 1000,
                    m: 20,
                    tightness: 0.5,
                    correlation,
                    seed: 11,
                },
            );
            let xs: Vec<f64> = (0..inst.n())
                .map(|j| inst.item_weight_sum(j) as f64)
                .collect();
            let ys: Vec<f64> = (0..inst.n()).map(|j| inst.profit(j) as f64).collect();
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            let (mx, my) = (mean(&xs), mean(&ys));
            let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
            let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
            let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
            cov / (vx.sqrt() * vy.sqrt())
        };
        // At m = 20 the mass/m signal's spread is ~√m smaller than a single
        // weight's, so even full correlation tops out well below 1.
        assert!(corr_of(1.0) > 0.3, "full correlation too weak");
        assert!(
            corr_of(0.0).abs() < 0.15,
            "zero correlation still strongly coupled"
        );
    }

    #[test]
    fn flagship_generation_stays_under_budget() {
        // Time/allocation guard: a 100×2500 instance is a quarter-million
        // weight draws — it must come back quickly (the 2 s bound is ~50×
        // slack over a debug-build run) and with exactly-sized buffers, or
        // the suite builders upstream start dominating experiment setup.
        let start = std::time::Instant::now();
        let inst = large_instance("budget", flagship_spec(5));
        let elapsed = start.elapsed();
        assert!(
            elapsed < std::time::Duration::from_secs(2),
            "100×2500 generation took {elapsed:?}"
        );
        // The weight matrix is the dominant allocation: it must be exactly
        // n·m entries, not a geometric-growth overshoot.
        assert_eq!(inst.n() * inst.m(), 250_000);
        for i in 0..inst.m() {
            assert_eq!(inst.constraint_row(i).len(), inst.n());
        }
    }

    #[test]
    fn large_suite_shape() {
        // Suite construction is the expensive path (4 instances, one of
        // them 100×5000): keep it bounded too.
        let start = std::time::Instant::now();
        let suite = large_suite();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "suite generation over budget"
        );
        assert_eq!(suite.len(), 4);
        assert!(suite.iter().all(|i| i.n() >= 2500 && i.m() == 100));
        for inst in &suite {
            validate_generated(inst).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "correlation")]
    fn rejects_absurd_correlation() {
        large_instance(
            "x",
            LargeSpec {
                n: 10,
                m: 1,
                tightness: 0.5,
                correlation: 1.5,
                seed: 0,
            },
        );
    }
}
