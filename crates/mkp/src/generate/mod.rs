//! Seeded benchmark-instance generators.
//!
//! The paper evaluates on two published suites that are not redistributable
//! here, so we re-create them synthetically with the same *structural*
//! characteristics (sizes, profit–weight correlation, capacity tightness) —
//! see DESIGN.md §4 for the substitution argument. Every generator is
//! deterministic in its seed, so all experiments are reproducible bit-for-bit.

mod chu_beasley;
mod fp;
mod gk;
mod large;
mod uncorrelated;

pub use chu_beasley::{cb_suite, chu_beasley_instance};
pub use fp::{fp_instance, fp_suite, FP_SUITE_LEN};
pub use gk::{gk_instance, mk_suite, table1_suite, GkSpec};
pub use large::{large_instance, large_suite, LargeSpec};
pub use uncorrelated::uncorrelated_instance;

use crate::instance::Instance;

/// Sanity conditions every generated instance must satisfy; generators assert
/// these and tests re-check them.
pub fn validate_generated(inst: &Instance) -> Result<(), String> {
    for i in 0..inst.m() {
        let total: i64 = inst.constraint_row(i).iter().sum();
        if inst.capacity(i) <= 0 {
            return Err(format!("{}: capacity {i} nonpositive", inst.name()));
        }
        if inst.capacity(i) >= total {
            return Err(format!(
                "{}: capacity {i} admits all items (slack constraint)",
                inst.name()
            ));
        }
    }
    for j in 0..inst.n() {
        if inst.profit(j) <= 0 {
            return Err(format!("{}: profit {j} nonpositive", inst.name()));
        }
        if inst.item_oversized(j) {
            return Err(format!("{}: item {j} oversized", inst.name()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_slack_constraint() {
        let inst = Instance::new("s", 2, 1, vec![1, 1], vec![1, 1], vec![10]).unwrap();
        assert!(validate_generated(&inst).unwrap_err().contains("slack"));
    }

    #[test]
    fn validate_rejects_oversized_item() {
        let inst = Instance::new("o", 2, 1, vec![1, 1], vec![9, 1], vec![5]).unwrap();
        assert!(validate_generated(&inst).unwrap_err().contains("oversized"));
    }

    #[test]
    fn validate_accepts_reasonable() {
        let inst = Instance::new("ok", 3, 1, vec![3, 2, 1], vec![2, 2, 2], vec![4]).unwrap();
        assert!(validate_generated(&inst).is_ok());
    }
}
