//! Uncorrelated random instances — the easy end of the MKP spectrum, used by
//! tests (fast exact certification) and by the ablation benches as a
//! contrast class to the correlated GK instances.

use super::validate_generated;
use crate::instance::Instance;
use crate::rng::Xoshiro256;

/// Generate an instance with independent uniform profits and weights and the
/// given capacity tightness.
pub fn uncorrelated_instance(
    name: impl Into<String>,
    n: usize,
    m: usize,
    tightness: f64,
    seed: u64,
) -> Instance {
    assert!(n >= 2 && m >= 1);
    assert!((0.05..=0.95).contains(&tightness));
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let profits: Vec<i64> = (0..n).map(|_| rng.range_inclusive(1, 100) as i64).collect();
    let mut weights = vec![0i64; n * m];
    for w in weights.iter_mut() {
        *w = rng.range_inclusive(1, 100) as i64;
    }
    let mut capacities = Vec::with_capacity(m);
    for i in 0..m {
        let total: i64 = weights[i * n..(i + 1) * n].iter().sum();
        let cap = (tightness * total as f64).round() as i64;
        let max_w = *weights[i * n..(i + 1) * n].iter().max().unwrap();
        capacities.push(cap.max(max_w));
    }
    let inst =
        Instance::new(name, n, m, profits, weights, capacities).expect("generator data valid");
    debug_assert!(validate_generated(&inst).is_ok());
    inst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_instances() {
        for seed in 0..10 {
            let inst = uncorrelated_instance("u", 40, 4, 0.5, seed);
            validate_generated(&inst).unwrap();
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(
            uncorrelated_instance("u", 20, 2, 0.5, 3),
            uncorrelated_instance("u", 20, 2, 0.5, 3)
        );
    }

    #[test]
    fn profits_not_correlated_with_mass() {
        let inst = uncorrelated_instance("u", 500, 10, 0.5, 9);
        let xs: Vec<f64> = (0..inst.n())
            .map(|j| inst.item_weight_sum(j) as f64)
            .collect();
        let ys: Vec<f64> = (0..inst.n()).map(|j| inst.profit(j) as f64).collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (mx, my) = (mean(&xs), mean(&ys));
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
        let corr = cov / (vx.sqrt() * vy.sqrt());
        assert!(corr.abs() < 0.15, "unexpected correlation {corr}");
    }
}
