//! Fréville–Plateau-style suite: 57 small, tight instances with
//! `n ∈ [6, 105]` and `m ∈ [2, 30]`, matching the published suite's size
//! envelope ("Hard 0-1 test problems for size reduction methods").
//!
//! The published suite (the classic `mknap2` families: HP/PB, WEING, WEISH,
//! SENTO, …) pairs its dimensions the way real test beds did: many
//! constraints only on small item counts (SENTO-like 60×30) and large item
//! counts only with few constraints (WEING-like 105×2). The schedule below
//! reproduces that shape — it is what keeps every instance certifiable by a
//! 1997-grade branch & bound, exactly as the originals were.
//!
//! Profits carry a mild weight correlation — enough that naive ratio greedy
//! is regularly sub-optimal (so experiment E1 actually tests the search)
//! while keeping branch & bound proofs tractable.

use super::validate_generated;
use crate::instance::Instance;
use crate::rng::Xoshiro256;

/// Number of instances in the reconstructed suite.
pub const FP_SUITE_LEN: usize = 57;

/// Profit/weight correlation level of a generated instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Corr {
    /// `c_j = mass_j/(2m) + U[1,60]` — the hard, correlated class.
    Mild,
    /// `c_j = U[1,100]` — easier, used for the largest sizes as in the
    /// published suite's WEING family.
    None,
}

/// (n, m, correlation) schedule, 57 entries mirroring the `mknap2` families:
/// HP/PB-like small problems, WEISH-like m=5, WEING-like m=2, SENTO-like
/// n=60/m=30, plus a PB7-like 37×30 block.
const SCHEDULE: &[(usize, usize, Corr)] = &[
    // HP/PB-like small problems (reduction-method stress tests).
    (6, 10, Corr::Mild),
    (10, 10, Corr::Mild),
    (15, 10, Corr::Mild),
    (20, 10, Corr::Mild),
    (28, 4, Corr::Mild),
    (34, 4, Corr::Mild),
    (27, 4, Corr::Mild),
    (35, 4, Corr::Mild),
    (19, 10, Corr::Mild),
    (24, 10, Corr::Mild),
    // WEING-like: few constraints, growing item counts. Uncorrelated, as
    // the published WEING family effectively is for local search.
    (28, 2, Corr::Mild),
    (35, 2, Corr::Mild),
    (45, 2, Corr::None),
    (54, 2, Corr::None),
    (63, 2, Corr::None),
    (70, 2, Corr::None),
    (80, 2, Corr::None),
    (90, 2, Corr::None),
    (105, 2, Corr::None),
    (105, 2, Corr::None),
    // WEISH-like: m = 5, n sweeping 30..90. The published WEISH family is
    // heuristically easy (every 1990s heuristic solved it to optimality —
    // its hardness is for *reduction methods*), so profits are uncorrelated;
    // mild correlation here would make the suite strictly harder than the
    // original and break the paper's all-optima claim for reasons the paper
    // never faced.
    (30, 5, Corr::Mild),
    (34, 5, Corr::Mild),
    (38, 5, Corr::Mild),
    (42, 5, Corr::Mild),
    (46, 5, Corr::None),
    (50, 5, Corr::None),
    (54, 5, Corr::None),
    (58, 5, Corr::None),
    (62, 5, Corr::None),
    (66, 5, Corr::None),
    (70, 5, Corr::None),
    (74, 5, Corr::None),
    (78, 5, Corr::None),
    (82, 5, Corr::None),
    (86, 5, Corr::None),
    (90, 5, Corr::None),
    // SENTO-like: many constraints on moderate n.
    (60, 30, Corr::None),
    (60, 30, Corr::None),
    // PB7-like.
    (37, 30, Corr::Mild),
    (40, 30, Corr::None),
    // Mixed medium block filling the envelope interior.
    (25, 15, Corr::Mild),
    (30, 15, Corr::Mild),
    (35, 15, Corr::Mild),
    (40, 15, Corr::Mild),
    (45, 15, Corr::None),
    (50, 15, Corr::None),
    (25, 20, Corr::Mild),
    (30, 20, Corr::Mild),
    (35, 20, Corr::Mild),
    (40, 20, Corr::None),
    (45, 20, Corr::None),
    (20, 25, Corr::Mild),
    (30, 25, Corr::Mild),
    (40, 25, Corr::None),
    (50, 25, Corr::None),
    (50, 10, Corr::Mild),
    (60, 10, Corr::Mild),
];

/// Generate the `k`-th instance of the suite (`k < 57`).
pub fn fp_instance(k: usize) -> Instance {
    assert!(k < FP_SUITE_LEN, "FP suite has {FP_SUITE_LEN} instances");
    let (n, m, corr) = SCHEDULE[k];
    let tightness = [0.40, 0.50, 0.60][k % 3];
    let mut rng = Xoshiro256::seed_from_u64(0x4650_0000 + k as u64);

    let mut weights = vec![0i64; n * m];
    for w in weights.iter_mut() {
        *w = rng.range_inclusive(1, 100) as i64;
    }
    let mut profits = Vec::with_capacity(n);
    for j in 0..n {
        let mass: i64 = (0..m).map(|i| weights[i * n + j]).sum();
        profits.push(match corr {
            Corr::Mild => (mass / (2 * m as i64)).max(1) + rng.range_inclusive(1, 60) as i64,
            Corr::None => rng.range_inclusive(1, 100) as i64,
        });
    }
    let mut capacities = Vec::with_capacity(m);
    for i in 0..m {
        let total: i64 = weights[i * n..(i + 1) * n].iter().sum();
        let cap = (tightness * total as f64).round() as i64;
        let max_w = *weights[i * n..(i + 1) * n].iter().max().unwrap();
        capacities.push(cap.max(max_w));
    }
    let inst = Instance::new(
        format!("FP{:02}_{m}x{n}", k + 1),
        n,
        m,
        profits,
        weights,
        capacities,
    )
    .expect("generator data valid");
    debug_assert!(validate_generated(&inst).is_ok());
    inst
}

/// The full 57-instance suite.
pub fn fp_suite() -> Vec<Instance> {
    (0..FP_SUITE_LEN).map(fp_instance).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_57_instances() {
        assert_eq!(fp_suite().len(), 57);
        assert_eq!(SCHEDULE.len(), FP_SUITE_LEN);
    }

    #[test]
    fn sizes_cover_published_envelope() {
        let suite = fp_suite();
        let n_min = suite.iter().map(|i| i.n()).min().unwrap();
        let n_max = suite.iter().map(|i| i.n()).max().unwrap();
        let m_min = suite.iter().map(|i| i.m()).min().unwrap();
        let m_max = suite.iter().map(|i| i.m()).max().unwrap();
        assert_eq!(n_min, 6);
        assert_eq!(n_max, 105);
        assert_eq!(m_min, 2);
        assert_eq!(m_max, 30);
    }

    #[test]
    fn dimension_pairing_matches_published_shape() {
        // Large n only with small m, and vice versa — the property that keeps
        // the suite certifiable.
        for inst in fp_suite() {
            assert!(
                inst.n() * inst.m() <= 2000,
                "{} too large for a 1997-grade proof",
                inst.name()
            );
        }
    }

    #[test]
    fn all_instances_valid() {
        for inst in fp_suite() {
            validate_generated(&inst).unwrap();
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(fp_instance(10), fp_instance(10));
        assert_ne!(fp_instance(10), fp_instance(11));
    }

    #[test]
    fn names_encode_dimensions() {
        let inst = fp_instance(0);
        assert!(inst.name().starts_with("FP01_"));
        assert!(inst.name().contains(&format!("{}x{}", inst.m(), inst.n())));
    }

    #[test]
    #[should_panic(expected = "57 instances")]
    fn out_of_range_panics() {
        fp_instance(57);
    }
}
