//! Constructive heuristics: greedy fills, randomized greedy starts, and the
//! feasibility projection used by strategic oscillation and the master's
//! restart logic.

use crate::eval::Ratios;
use crate::instance::Instance;
use crate::rng::Xoshiro256;
use crate::solution::Solution;

/// Fill `sol` greedily: walk items in descending pseudo-utility and pack
/// every one that still fits. Starts from the current contents of `sol`
/// (pass [`Solution::empty`] for a from-scratch build). Always returns with
/// `sol` feasible **if it was feasible on entry**.
pub fn greedy_fill(inst: &Instance, ratios: &Ratios, sol: &mut Solution) {
    for &j in ratios.by_utility_desc() {
        if !sol.contains(j) && sol.fits(inst, j) {
            sol.add(inst, j);
        }
    }
}

/// From-scratch greedy solution by descending pseudo-utility.
pub fn greedy(inst: &Instance, ratios: &Ratios) -> Solution {
    let mut sol = Solution::empty(inst);
    greedy_fill(inst, ratios, &mut sol);
    sol
}

/// GRASP-style randomized greedy: at each step pick uniformly among the
/// `rcl` best-still-fitting items (restricted candidate list). `rcl = 1`
/// degenerates to the deterministic greedy. Used by the master's ISP to
/// inject fresh diverse starting solutions.
pub fn randomized_greedy(
    inst: &Instance,
    ratios: &Ratios,
    rng: &mut Xoshiro256,
    rcl: usize,
) -> Solution {
    assert!(rcl >= 1, "restricted candidate list must be non-empty");
    let mut sol = Solution::empty(inst);
    // Candidates kept in utility order; we re-scan for fitting ones each
    // round. n is at most a few hundred here, so the O(n²) worst case is
    // irrelevant next to the millions of TS moves that follow.
    let order = ratios.by_utility_desc();
    let mut packed_something = true;
    while packed_something {
        packed_something = false;
        let mut candidates: Vec<usize> = Vec::with_capacity(rcl);
        for &j in order {
            if !sol.contains(j) && sol.fits(inst, j) {
                candidates.push(j);
                if candidates.len() == rcl {
                    break;
                }
            }
        }
        if !candidates.is_empty() {
            let pick = *rng.choose(&candidates);
            sol.add(inst, pick);
            packed_something = true;
        }
    }
    sol
}

/// Dynamic (slack-aware) utility of adding item `j` to `sol`:
/// `c_j / Σ_i a_ij / (slack_i + 1)`. Unlike the static pseudo-utility it
/// re-weights each constraint by its *remaining* capacity, which matters on
/// "lumpy" instances whose weights are large relative to the capacities —
/// there the static ranking can be badly misleading.
#[inline]
pub fn dynamic_utility(inst: &Instance, sol: &Solution, j: usize) -> f64 {
    let mut norm = 0.0f64;
    for (i, &a) in inst.item_weights(j).iter().enumerate() {
        norm += a as f64 / (sol.slack(inst, i) + 1) as f64;
    }
    let c = inst.profit(j) as f64;
    if norm == 0.0 {
        f64::INFINITY
    } else {
        c / norm
    }
}

/// Saturate `sol` greedily by **dynamic** utility, recomputing the scores
/// after every insertion. O(adds · n · m) — used on the occasional paths
/// (restarts, intensification refills), not in the per-move hot loop.
pub fn dynamic_greedy_fill(inst: &Instance, sol: &mut Solution) {
    loop {
        let mut best: Option<(usize, f64)> = None;
        for j in 0..inst.n() {
            if sol.contains(j) || !sol.fits(inst, j) {
                continue;
            }
            let u = dynamic_utility(inst, sol, j);
            if best.is_none_or(|(_, bu)| u > bu) {
                best = Some((j, u));
            }
        }
        match best {
            Some((j, _)) => sol.add(inst, j),
            None => break,
        }
    }
}

/// [`dynamic_greedy_fill`] with the word-parallel fits kernel: the residual
/// lane cache prunes non-fitting candidates four constraints at a time, and
/// the slack-aware utility is only computed for survivors. Selection is
/// bit-identical to the scalar fill — the lane check is an exact predicate
/// and the scoring path is untouched. Falls back to the scalar fill when the
/// instance's weights exceed the lane payload.
pub fn dynamic_greedy_fill_view(inst: &Instance, ratios: &Ratios, sol: &mut Solution) {
    let view = ratios.view();
    let mut lanes = crate::soa::ResidualLanes::new();
    loop {
        lanes.sync(view, inst, sol);
        if !lanes.usable(view) {
            return dynamic_greedy_fill(inst, sol);
        }
        let mut best: Option<(usize, f64)> = None;
        for j in 0..inst.n() {
            if sol.contains(j) || !lanes.fits(view, j) {
                continue;
            }
            let u = dynamic_utility(inst, sol, j);
            if best.is_none_or(|(_, bu)| u > bu) {
                best = Some((j, u));
            }
        }
        match best {
            Some((j, _)) => sol.add(inst, j),
            None => break,
        }
    }
}

/// GRASP-style randomized greedy over the **dynamic** utility: each step
/// picks uniformly among the `rcl` best fitting items under the current
/// slack-aware scores.
pub fn dynamic_randomized_greedy(inst: &Instance, rng: &mut Xoshiro256, rcl: usize) -> Solution {
    assert!(rcl >= 1, "restricted candidate list must be non-empty");
    let mut sol = Solution::empty(inst);
    loop {
        // Collect the rcl best fitting items by dynamic utility.
        let mut top: Vec<(usize, f64)> = Vec::with_capacity(rcl + 1);
        for j in 0..inst.n() {
            if sol.contains(j) || !sol.fits(inst, j) {
                continue;
            }
            let u = dynamic_utility(inst, &sol, j);
            let pos = top.partition_point(|&(_, s)| s >= u);
            if pos < rcl {
                top.insert(pos, (j, u));
                top.truncate(rcl);
            }
        }
        if top.is_empty() {
            break;
        }
        let (j, _) = top[rng.index(top.len())];
        sol.add(inst, j);
    }
    sol
}

/// Random feasible solution: visit items in random order, pack what fits.
pub fn random_feasible(inst: &Instance, rng: &mut Xoshiro256) -> Solution {
    let mut order: Vec<usize> = (0..inst.n()).collect();
    rng.shuffle(&mut order);
    let mut sol = Solution::empty(inst);
    for j in order {
        if sol.fits(inst, j) {
            sol.add(inst, j);
        }
    }
    sol
}

/// Project an (possibly infeasible) solution back onto the feasible domain by
/// repeatedly expelling the packed item with the largest burden
/// `Σ_i a_ij / c_j` (paper §3.2: "excluding from the knapsack the less
/// interesting objects"). Returns the number of items dropped.
pub fn project_feasible(inst: &Instance, ratios: &Ratios, sol: &mut Solution) -> usize {
    let mut dropped = 0;
    while !sol.is_feasible(inst) {
        let victim = sol
            .bits()
            .iter_ones()
            .max_by(|&a, &b| {
                ratios
                    .burden(a)
                    .partial_cmp(&ratios.burden(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    // Ties: prefer dropping the lower-profit item.
                    .then_with(|| inst.profit(b).cmp(&inst.profit(a)))
            })
            .expect("infeasible solution must contain at least one item");
        sol.drop(inst, victim);
        dropped += 1;
    }
    dropped
}

/// From-scratch randomized construction: a plain greedy fill driven by
/// [`Ratios::perturbed`] utilities — every call with a fresh rng state
/// explores a different profit-density-guided packing order. The repair
/// policy's restart generator (Martins, arXiv 2405.15569).
pub fn perturbed_greedy(inst: &Instance, rng: &mut Xoshiro256, strength: f64) -> Solution {
    let ratios = Ratios::perturbed(inst, rng, strength);
    let mut sol = Solution::empty(inst);
    greedy_fill(inst, &ratios, &mut sol);
    sol
}

/// Repair an **arbitrary** assignment into a feasible, maximal solution:
///
/// 1. *Randomized drop phase* — while infeasible, expel one packed item
///    chosen uniformly among the `rcl` largest-burden packed items (the
///    randomized cousin of [`project_feasible`]);
/// 2. *Saturation phase* — greedy-fill by descending pseudo-utility until
///    no unpacked item fits.
///
/// Always terminates (each drop removes an item, each fill pass only adds
/// items that fit), always returns a feasible solution that is maximal
/// (no single item can be added), and is a pure function of
/// `(inst, ratios, rng state, bits)`.
pub fn randomized_repair(
    inst: &Instance,
    ratios: &Ratios,
    rng: &mut Xoshiro256,
    bits: crate::bitset::BitVec,
) -> Solution {
    let rcl = 3usize;
    let mut sol = Solution::from_bits(inst, bits);
    while !sol.is_feasible(inst) {
        let mut worst: Vec<usize> = sol.bits().iter_ones().collect();
        worst.sort_by(|&a, &b| {
            ratios
                .burden(b)
                .partial_cmp(&ratios.burden(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| inst.profit(a).cmp(&inst.profit(b)))
        });
        worst.truncate(rcl);
        let victim = *rng.choose(&worst);
        sol.drop(inst, victim);
    }
    greedy_fill(inst, ratios, &mut sol);
    sol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::BitVec;
    use crate::prop_check;
    use crate::testkit::gen;

    fn inst() -> Instance {
        Instance::new(
            "g",
            5,
            2,
            vec![10, 8, 6, 4, 2],
            vec![
                4, 3, 2, 5, 1, //
                2, 4, 1, 1, 3,
            ],
            vec![7, 6],
        )
        .unwrap()
    }

    #[test]
    fn greedy_is_feasible_and_nonempty() {
        let i = inst();
        let r = Ratios::new(&i);
        let sol = greedy(&i, &r);
        assert!(sol.is_feasible(&i));
        assert!(sol.value() > 0);
        assert!(sol.check_consistent(&i));
    }

    #[test]
    fn greedy_is_maximal() {
        // No remaining item should fit once greedy returns.
        let i = inst();
        let r = Ratios::new(&i);
        let sol = greedy(&i, &r);
        for j in 0..i.n() {
            if !sol.contains(j) {
                assert!(!sol.fits(&i, j), "greedy left addable item {j}");
            }
        }
    }

    #[test]
    fn rcl_one_matches_deterministic_greedy() {
        let i = inst();
        let r = Ratios::new(&i);
        let mut rng = Xoshiro256::seed_from_u64(5);
        let a = randomized_greedy(&i, &r, &mut rng, 1);
        let b = greedy(&i, &r);
        assert_eq!(a.bits(), b.bits());
    }

    #[test]
    fn randomized_greedy_feasible_and_deterministic_per_seed() {
        let i = inst();
        let r = Ratios::new(&i);
        let mut r1 = Xoshiro256::seed_from_u64(99);
        let mut r2 = Xoshiro256::seed_from_u64(99);
        let a = randomized_greedy(&i, &r, &mut r1, 3);
        let b = randomized_greedy(&i, &r, &mut r2, 3);
        assert_eq!(a.bits(), b.bits());
        assert!(a.is_feasible(&i));
    }

    #[test]
    fn random_feasible_is_feasible() {
        let i = inst();
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..20 {
            let sol = random_feasible(&i, &mut rng);
            assert!(sol.is_feasible(&i));
        }
    }

    #[test]
    fn dynamic_fill_is_feasible_and_maximal() {
        let i = inst();
        let mut sol = Solution::empty(&i);
        dynamic_greedy_fill(&i, &mut sol);
        assert!(sol.is_feasible(&i));
        for j in 0..i.n() {
            if !sol.contains(j) {
                assert!(!sol.fits(&i, j), "dynamic fill left addable item {j}");
            }
        }
    }

    #[test]
    fn dynamic_utility_tracks_slack() {
        // Two constraints; as constraint 0 tightens, items heavy on it lose
        // utility relative to items heavy on the loose constraint.
        let i = Instance::new(
            "dyn",
            3,
            2,
            vec![10, 10, 1],
            vec![
                9, 1, 5, // constraint 0
                1, 9, 1, // constraint 1
            ],
            vec![10, 100],
        )
        .unwrap();
        let mut sol = Solution::empty(&i);
        // Initially item 0 and 1 have comparable utility (both profit 10).
        sol.add(&i, 2); // load c0 = 5 → slack 5 vs slack 99
        let u0 = dynamic_utility(&i, &sol, 0); // heavy on the tight c0
        let u1 = dynamic_utility(&i, &sol, 1); // heavy on the loose c1
        assert!(u1 > u0, "slack-aware score must prefer the loose-side item");
    }

    #[test]
    fn dynamic_randomized_greedy_feasible_and_seeded() {
        let i = inst();
        let mut a = Xoshiro256::seed_from_u64(4);
        let mut b = Xoshiro256::seed_from_u64(4);
        let sa = dynamic_randomized_greedy(&i, &mut a, 3);
        let sb = dynamic_randomized_greedy(&i, &mut b, 3);
        assert_eq!(sa.bits(), sb.bits());
        assert!(sa.is_feasible(&i));
        assert!(sa.value() > 0);
    }

    #[test]
    fn dynamic_beats_static_on_lumpy_instance() {
        // Weights large relative to capacity; the static order misleads.
        let i = Instance::new(
            "lumpy",
            5,
            1,
            vec![100, 95, 90, 60, 55],
            vec![70, 65, 60, 35, 34],
            vec![69],
        )
        .unwrap();
        let ratios = Ratios::new(&i);
        let stat = greedy(&i, &ratios);
        let mut sol = Solution::empty(&i);
        dynamic_greedy_fill(&i, &mut sol);
        assert!(sol.value() >= stat.value());
    }

    #[test]
    fn project_restores_feasibility() {
        let i = inst();
        let r = Ratios::new(&i);
        // Pack everything: loads [15, 11] vs caps [7, 6] — badly infeasible.
        let all = BitVec::from_bools(vec![true; i.n()]);
        let mut sol = Solution::from_bits(&i, all);
        assert!(!sol.is_feasible(&i));
        let dropped = project_feasible(&i, &r, &mut sol);
        assert!(sol.is_feasible(&i));
        assert!(dropped > 0);
        assert!(sol.check_consistent(&i));
    }

    #[test]
    fn project_noop_on_feasible() {
        let i = inst();
        let r = Ratios::new(&i);
        let mut sol = Solution::empty(&i);
        assert_eq!(project_feasible(&i, &r, &mut sol), 0);
    }

    fn arb_instance(rng: &mut Xoshiro256) -> Instance {
        let n = gen::usize_in(rng, 2, 25);
        let m = gen::usize_in(rng, 1, 6);
        let profits: Vec<i64> = (0..n).map(|_| gen::i64_in(rng, 1, 99)).collect();
        let weights: Vec<i64> = (0..n * m).map(|_| gen::i64_in(rng, 1, 49)).collect();
        let caps: Vec<i64> = (0..m).map(|_| gen::i64_in(rng, 20, 299)).collect();
        Instance::new("prop", n, m, profits, weights, caps).unwrap()
    }

    #[test]
    fn prop_view_fill_matches_scalar_fill() {
        prop_check!(|rng| (arb_instance(rng), rng.next_u64()), |input| {
            let (inst, seed) = input;
            let r = Ratios::new(inst);
            let mut rng = Xoshiro256::seed_from_u64(*seed);
            let start = random_feasible(inst, &mut rng);
            let mut scalar = start.clone();
            let mut lane = start;
            dynamic_greedy_fill(inst, &mut scalar);
            dynamic_greedy_fill_view(inst, &r, &mut lane);
            assert_eq!(scalar.bits(), lane.bits());
        });
    }

    #[test]
    fn prop_greedy_always_feasible() {
        prop_check!(|rng| (arb_instance(rng), rng.next_u64()), |input| {
            let (inst, seed) = input;
            let r = Ratios::new(inst);
            assert!(greedy(inst, &r).is_feasible(inst));
            let mut rng = Xoshiro256::seed_from_u64(*seed);
            assert!(randomized_greedy(inst, &r, &mut rng, 4).is_feasible(inst));
            assert!(random_feasible(inst, &mut rng).is_feasible(inst));
        });
    }

    #[test]
    fn prop_projection_always_feasible() {
        prop_check!(
            |rng| (arb_instance(rng), gen::vec_of(rng, 25, 25, gen::boolean)),
            |input| {
                let (inst, bools) = input;
                let r = Ratios::new(inst);
                let bits = BitVec::from_bools(
                    bools
                        .iter()
                        .copied()
                        .chain(std::iter::repeat(false))
                        .take(inst.n()),
                );
                let mut sol = Solution::from_bits(inst, bits);
                project_feasible(inst, &r, &mut sol);
                assert!(sol.is_feasible(inst));
                assert!(sol.check_consistent(inst));
            }
        );
    }

    /// Satellite property: for arbitrary instances, seeds and (possibly
    /// badly infeasible) starting assignments, randomized repair always
    /// terminates in a feasible, *maximal* solution and is reproducible
    /// per seed.
    #[test]
    fn prop_randomized_repair_feasible_maximal_reproducible() {
        prop_check!(
            |rng| (
                arb_instance(rng),
                rng.next_u64(),
                gen::vec_of(rng, 25, 25, gen::boolean)
            ),
            |input| {
                let (inst, seed, bools) = input;
                let r = Ratios::new(inst);
                let bits = BitVec::from_bools(
                    bools
                        .iter()
                        .copied()
                        .chain(std::iter::repeat(false))
                        .take(inst.n()),
                );
                let mut rng = Xoshiro256::seed_from_u64(*seed);
                let sol = randomized_repair(inst, &r, &mut rng, bits.clone());
                assert!(sol.is_feasible(inst), "repair left infeasibility");
                assert!(sol.check_consistent(inst));
                // Maximal: no unpacked item still fits.
                for j in sol.bits().iter_zeros() {
                    assert!(!sol.fits(inst, j), "item {j} fits but was not packed");
                }
                // Reproducible: same seed, same result — bit for bit.
                let mut rng2 = Xoshiro256::seed_from_u64(*seed);
                let again = randomized_repair(inst, &r, &mut rng2, bits);
                assert_eq!(sol.bits(), again.bits(), "repair not seed-reproducible");
            }
        );
    }

    /// Perturbed construction stays feasible and maximal, is reproducible
    /// per seed, and at zero strength collapses to the deterministic
    /// greedy.
    #[test]
    fn prop_perturbed_greedy_feasible_and_seeded() {
        prop_check!(|rng| (arb_instance(rng), rng.next_u64()), |input| {
            let (inst, seed) = input;
            let mut rng = Xoshiro256::seed_from_u64(*seed);
            let sol = perturbed_greedy(inst, &mut rng, 0.3);
            assert!(sol.is_feasible(inst));
            for j in sol.bits().iter_zeros() {
                assert!(!sol.fits(inst, j), "perturbed fill not maximal");
            }
            let mut rng2 = Xoshiro256::seed_from_u64(*seed);
            assert_eq!(sol.bits(), perturbed_greedy(inst, &mut rng2, 0.3).bits());
            // Zero strength must reproduce the deterministic greedy.
            let plain = greedy(inst, &Ratios::new(inst));
            let mut rng3 = Xoshiro256::seed_from_u64(*seed);
            assert_eq!(perturbed_greedy(inst, &mut rng3, 0.0).bits(), plain.bits());
        });
    }
}
