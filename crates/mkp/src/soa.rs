//! Structure-of-arrays evaluation view: word-parallel feasibility kernels.
//!
//! The move operator's hottest predicate is [`crate::Solution::fits`] — an
//! O(m) scan of `load_i + a_ij ≤ b_i` with a branch per constraint. This
//! module packs the per-item weight columns into 16-bit lanes of `u64`
//! words ([`SoaView`]) and caches the solution's *residual capacities* in
//! the same layout ([`ResidualLanes`]), so one branch-free subtraction
//! tests four constraints at a time (SWAR — SIMD within a register; no
//! SIMD crates, per DESIGN.md §7). DESIGN.md §12 documents the layout and
//! the cache invariants.
//!
//! The lane test is **exactly** equivalent to the scalar one whenever the
//! encoding applies (all weights ≤ [`LANE_MAX`], residuals non-negative):
//! integer comparisons only, no rounding. When it does not apply the view
//! flags itself unusable and callers fall back to the scalar path, so the
//! view is an evaluation cache, never a semantic change.

use crate::eval::drop_score;
use crate::instance::Instance;
use crate::solution::Solution;

/// Constraints packed per `u64` word (16-bit lanes).
pub const LANES_PER_WORD: usize = 4;

/// Largest weight or residual encodable in one lane (15 bits of payload;
/// the 16th bit of each lane is the borrow sentinel of the SWAR subtract).
pub const LANE_MAX: i64 = 0x7FFF;

/// Per-lane borrow-sentinel bits (bit 15 of each 16-bit lane).
const HIGH: u64 = 0x8000_8000_8000_8000;

/// Monotone source for [`SoaView`] identity tokens (0 is never issued).
static NEXT_VIEW_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

fn next_view_id() -> u64 {
    NEXT_VIEW_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Structure-of-arrays evaluation view of an instance: lane-packed weight
/// columns, precomputed drop-score (penalty) tables, and a profit-descending
/// item order for intensification scans. Built once per instance alongside
/// [`crate::eval::Ratios`]; immutable thereafter.
#[derive(Debug, Clone)]
pub struct SoaView {
    n: usize,
    m: usize,
    words_per_item: usize,
    /// `weight_lanes[j * words_per_item + w]` holds constraints
    /// `4w .. 4w+3` of item `j`, 16 bits each; unused lanes are zero
    /// (zero weight always fits).
    weight_lanes: Vec<u64>,
    /// `drop_scores[i * n + j]` = [`drop_score`]`(inst, i, j)` — the exact
    /// f64 the scalar path computes, tabulated so the Drop scan does a load
    /// instead of a division.
    drop_scores: Vec<f64>,
    /// `drop_order[i * n ..]` holds the items ranked by descending
    /// [`drop_score`] against constraint `i`, ties by ascending index —
    /// exactly the order a max-scan with a strict `>` visits its winners.
    /// The Drop selection walks this static ranking instead of comparing
    /// scores per packed item.
    drop_order: Vec<usize>,
    /// `weight_rows[i * n + j]` = `a_ij` — the weight matrix transposed to
    /// constraint-major order, so a scan over items against one fixed
    /// constraint (the fits pre-filter) streams sequentially.
    weight_rows: Vec<i64>,
    /// [`SoaView::weight_rows`] permuted by the caller-installed scan order
    /// (`scan_weight_rows[i * n + k]` = `a_i,order[k]`): the Add scan walks
    /// the utility ranking, and this layout turns its pre-filter loads into
    /// a sequential stream. Empty until [`SoaView::set_scan_order`] runs.
    scan_weight_rows: Vec<i64>,
    /// Suffix minima of [`SoaView::scan_weight_rows`]
    /// (`scan_suffix_min[i * n + k]` = min of positions `k..` of row `i`):
    /// when the minimum exceeds the filter residual, no later scan position
    /// can fit and the Add scan stops early.
    scan_suffix_min: Vec<i64>,
    /// Inverse of the scan order (`scan_rank[order[k]] = k`): maps an item
    /// to its scan position, so incremental packed-set mirrors of a
    /// solution can flip single bits. Empty until
    /// [`SoaView::set_scan_order`] runs.
    scan_rank: Vec<u32>,
    /// Item indices by descending profit, ties by ascending index.
    by_profit_desc: Vec<usize>,
    /// All weights fit the lane payload; lane kernels are exact.
    lanes_ok: bool,
    /// Identity token, refreshed by [`SoaView::set_scan_order`]: two views
    /// with the same id are guaranteed to hold identical tables, so caches
    /// keyed on the id (the Add scan's packed-set mirror) stay sound.
    id: u64,
}

impl SoaView {
    /// Build the view in O(n·m).
    pub fn new(inst: &Instance) -> Self {
        let (n, m) = (inst.n(), inst.m());
        let words_per_item = m.div_ceil(LANES_PER_WORD);
        let lanes_ok = (0..n).all(|j| inst.item_weights(j).iter().all(|&a| a <= LANE_MAX));
        let mut weight_lanes = vec![0u64; n * words_per_item];
        if lanes_ok {
            for j in 0..n {
                for (i, &a) in inst.item_weights(j).iter().enumerate() {
                    let word = j * words_per_item + i / LANES_PER_WORD;
                    let shift = (i % LANES_PER_WORD) * 16;
                    weight_lanes[word] |= (a as u64) << shift;
                }
            }
        }
        let mut drop_scores = vec![0f64; n * m];
        let mut drop_order = vec![0usize; n * m];
        for i in 0..m {
            for j in 0..n {
                drop_scores[i * n + j] = drop_score(inst, i, j);
            }
            let row = &drop_scores[i * n..(i + 1) * n];
            let order = &mut drop_order[i * n..(i + 1) * n];
            for (j, slot) in order.iter_mut().enumerate() {
                *slot = j;
            }
            // Scores are never NaN (finite or +inf), so partial_cmp is total.
            order.sort_by(|&a, &b| {
                row[b]
                    .partial_cmp(&row[a])
                    .expect("drop scores are comparable")
                    .then(a.cmp(&b))
            });
        }
        let mut weight_rows = vec![0i64; n * m];
        for j in 0..n {
            for (i, &a) in inst.item_weights(j).iter().enumerate() {
                weight_rows[i * n + j] = a;
            }
        }
        let mut by_profit_desc: Vec<usize> = (0..n).collect();
        by_profit_desc.sort_by(|&a, &b| inst.profit(b).cmp(&inst.profit(a)).then(a.cmp(&b)));
        SoaView {
            n,
            m,
            words_per_item,
            weight_lanes,
            drop_scores,
            drop_order,
            weight_rows,
            scan_weight_rows: Vec::new(),
            scan_suffix_min: Vec::new(),
            scan_rank: Vec::new(),
            by_profit_desc,
            lanes_ok,
            id: next_view_id(),
        }
    }

    /// Install the scan order (the utility ranking) and materialise the
    /// permuted pre-filter rows plus their suffix minima. `order` must be a
    /// permutation of `0..n`.
    pub fn set_scan_order(&mut self, order: &[usize]) {
        debug_assert_eq!(order.len(), self.n);
        self.scan_weight_rows.clear();
        self.scan_weight_rows.reserve_exact(self.n * self.m);
        for i in 0..self.m {
            let row = &self.weight_rows[i * self.n..(i + 1) * self.n];
            self.scan_weight_rows.extend(order.iter().map(|&j| row[j]));
        }
        self.scan_suffix_min = self.scan_weight_rows.clone();
        for i in 0..self.m {
            let row = &mut self.scan_suffix_min[i * self.n..(i + 1) * self.n];
            for k in (0..self.n.saturating_sub(1)).rev() {
                row[k] = row[k].min(row[k + 1]);
            }
        }
        self.scan_rank = vec![0u32; self.n];
        for (k, &j) in order.iter().enumerate() {
            self.scan_rank[j] = k as u32;
        }
        // The tables changed: invalidate caches keyed on the old identity.
        self.id = next_view_id();
    }

    /// Scan position of each item (inverse of the scan order) — only after
    /// [`SoaView::set_scan_order`]; empty otherwise.
    #[inline]
    pub fn scan_rank(&self) -> &[u32] {
        &self.scan_rank
    }

    /// Identity token: equal ids imply identical tables (see the field
    /// docs). Never zero, so zero is a safe "no view" sentinel.
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Pre-filter weights against constraint `i` in scan order — only after
    /// [`SoaView::set_scan_order`]; empty otherwise.
    #[inline]
    pub fn scan_weight_row(&self, i: usize) -> &[i64] {
        if self.scan_weight_rows.is_empty() {
            return &[];
        }
        &self.scan_weight_rows[i * self.n..(i + 1) * self.n]
    }

    /// Suffix minima of [`SoaView::scan_weight_row`] — only after
    /// [`SoaView::set_scan_order`]; empty otherwise.
    #[inline]
    pub fn scan_suffix_min_row(&self, i: usize) -> &[i64] {
        if self.scan_suffix_min.is_empty() {
            return &[];
        }
        &self.scan_suffix_min[i * self.n..(i + 1) * self.n]
    }

    /// Number of items.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of constraints.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Lane words per item column.
    #[inline]
    pub fn words_per_item(&self) -> usize {
        self.words_per_item
    }

    /// Do all weights fit the 15-bit lane payload? When false the lane
    /// kernels are disabled and callers use the scalar reference path.
    #[inline]
    pub fn lanes_ok(&self) -> bool {
        self.lanes_ok
    }

    /// Item `j`'s packed weight column.
    #[inline]
    pub fn item_lanes(&self, j: usize) -> &[u64] {
        &self.weight_lanes[j * self.words_per_item..(j + 1) * self.words_per_item]
    }

    /// Tabulated drop score of item `j` against constraint `i` — bit-equal
    /// to [`drop_score`].
    #[inline]
    pub fn drop_score(&self, i: usize, j: usize) -> f64 {
        self.drop_scores[i * self.n + j]
    }

    /// Row of tabulated drop scores against constraint `i` (one per item).
    #[inline]
    pub fn drop_score_row(&self, i: usize) -> &[f64] {
        &self.drop_scores[i * self.n..(i + 1) * self.n]
    }

    /// Items ranked by descending drop score against constraint `i`, ties
    /// by ascending index.
    #[inline]
    pub fn drop_order_row(&self, i: usize) -> &[usize] {
        &self.drop_order[i * self.n..(i + 1) * self.n]
    }

    /// Weights of every item against constraint `i` (transposed row).
    #[inline]
    pub fn weight_row(&self, i: usize) -> &[i64] {
        &self.weight_rows[i * self.n..(i + 1) * self.n]
    }

    /// Items ordered by descending profit (ties by ascending index).
    #[inline]
    pub fn by_profit_desc(&self) -> &[usize] {
        &self.by_profit_desc
    }
}

/// Per-solution cache of lane-packed residual capacities
/// `r_i = b_i − load_i`, saturated at [`LANE_MAX`] (saturation is exact for
/// the fits test: a residual that large admits any lane-encodable weight).
///
/// Invariants (DESIGN.md §12): the cache is valid only for the solution it
/// was last [`ResidualLanes::sync`]ed against, and only while that solution
/// is feasible — a negative residual cannot be lane-encoded, so `sync` on an
/// infeasible solution marks the cache unusable and callers take the scalar
/// path. Unused trailing lanes hold zero (weight zero vs residual zero:
/// always fits).
#[derive(Debug, Clone, Default)]
pub struct ResidualLanes {
    words: Vec<u64>,
    exact: bool,
    /// Most-saturated constraint at last sync (smallest residual): the fits
    /// pre-filter tests it scalar-first, since it rejects most candidates.
    filter_i: usize,
    /// Raw (unsaturated) residual of `filter_i`; `i64::MAX` disables the
    /// pre-filter (no constraints).
    filter_r: i64,
}

impl ResidualLanes {
    /// An empty, unusable cache; [`ResidualLanes::sync`] before use.
    pub fn new() -> Self {
        ResidualLanes {
            filter_r: i64::MAX,
            ..ResidualLanes::default()
        }
    }

    /// Rebuild the residual lanes from `sol`'s cached loads in O(m).
    pub fn sync(&mut self, view: &SoaView, inst: &Instance, sol: &Solution) {
        self.words.clear();
        self.words.resize(view.words_per_item, 0);
        self.exact = true;
        self.filter_i = 0;
        self.filter_r = i64::MAX;
        for (i, (&load, &cap)) in sol.loads().iter().zip(inst.capacities()).enumerate() {
            let r = cap - load;
            if r < 0 {
                self.exact = false;
                return;
            }
            if r < self.filter_r {
                self.filter_i = i;
                self.filter_r = r;
            }
            let lane = r.min(LANE_MAX) as u64;
            self.words[i / LANES_PER_WORD] |= lane << ((i % LANES_PER_WORD) * 16);
        }
    }

    /// Is the lane fits-kernel exact for the last-synced solution?
    #[inline]
    pub fn usable(&self, view: &SoaView) -> bool {
        view.lanes_ok && self.exact
    }

    /// Most-saturated constraint at last sync (pre-filter index).
    #[inline]
    pub fn filter_constraint(&self) -> usize {
        self.filter_i
    }

    /// Raw residual of [`ResidualLanes::filter_constraint`];
    /// `i64::MAX` when no constraint was seen.
    #[inline]
    pub fn filter_residual(&self) -> i64 {
        self.filter_r
    }

    /// The lane-word fits test without the scalar pre-filter — for callers
    /// that already applied the pre-filter inline (the Add scan folds it
    /// into its skip predicate).
    #[inline]
    pub fn fits_unfiltered(&self, view: &SoaView, j: usize) -> bool {
        debug_assert!(self.usable(view), "lane fits on an unusable cache");
        for (&r, &a) in self.words.iter().zip(view.item_lanes(j)) {
            let z = (r | HIGH).wrapping_sub(a);
            if !z & HIGH != 0 {
                return false;
            }
        }
        true
    }

    /// Word-parallel fits test: would adding item `j` keep every residual
    /// non-negative? Requires [`ResidualLanes::usable`].
    ///
    /// Per 16-bit lane the subtraction `(r | 0x8000) − a` cannot borrow out
    /// of its lane (minuend ≥ 0x8000, subtrahend ≤ 0x7FFF), so one u64
    /// subtract evaluates four lanes independently; lane bit 15 survives
    /// iff `r ≥ a`. A scalar pre-filter checks the most-saturated
    /// constraint first — a single sequential load that settles most
    /// rejections without touching the item's lane column; the word loop
    /// then exits on the first violated group.
    #[inline]
    pub fn fits(&self, view: &SoaView, j: usize) -> bool {
        debug_assert!(self.usable(view), "lane fits on an unusable cache");
        if self.filter_r != i64::MAX && view.weight_row(self.filter_i)[j] > self.filter_r {
            return false;
        }
        self.fits_unfiltered(view, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop_check;
    use crate::testkit::gen;
    use crate::Xoshiro256;

    fn view_and_lanes(inst: &Instance, sol: &Solution) -> (SoaView, ResidualLanes) {
        let view = SoaView::new(inst);
        let mut lanes = ResidualLanes::new();
        lanes.sync(&view, inst, sol);
        (view, lanes)
    }

    #[test]
    fn lane_fits_matches_scalar_on_small_instance() {
        let inst = Instance::new(
            "s",
            4,
            3, // m = 3: not a multiple of the lane width
            vec![10, 8, 6, 4],
            vec![
                5, 4, 0, 2, // constraint 0 (item 2 weightless here)
                1, 2, 3, 4, //
                7, 0, 1, 1,
            ],
            vec![8, 4, 7],
        )
        .unwrap();
        let mut sol = Solution::empty(&inst);
        sol.add(&inst, 0);
        let (view, lanes) = view_and_lanes(&inst, &sol);
        assert!(lanes.usable(&view));
        for j in 1..inst.n() {
            assert_eq!(lanes.fits(&view, j), sol.fits(&inst, j), "item {j}");
        }
    }

    #[test]
    fn saturated_residual_still_exact() {
        // Capacity far beyond LANE_MAX: the residual saturates, but any
        // encodable weight fits — exactly what the scalar test says.
        let inst =
            Instance::new("big", 2, 1, vec![1, 1], vec![LANE_MAX, 3], vec![1 << 40]).unwrap();
        let sol = Solution::empty(&inst);
        let (view, lanes) = view_and_lanes(&inst, &sol);
        assert!(lanes.usable(&view));
        assert!(lanes.fits(&view, 0));
        assert!(lanes.fits(&view, 1));
    }

    #[test]
    fn oversized_weight_disables_lanes() {
        let inst = Instance::new("w", 2, 1, vec![1, 1], vec![LANE_MAX + 1, 3], vec![100]).unwrap();
        let view = SoaView::new(&inst);
        assert!(!view.lanes_ok());
        let mut lanes = ResidualLanes::new();
        lanes.sync(&view, &inst, &Solution::empty(&inst));
        assert!(!lanes.usable(&view));
    }

    #[test]
    fn infeasible_solution_marks_cache_unusable() {
        let inst = Instance::new("inf", 2, 1, vec![1, 1], vec![3, 3], vec![4]).unwrap();
        let mut sol = Solution::empty(&inst);
        sol.add(&inst, 0);
        sol.add(&inst, 1); // load 6 > cap 4
        let (view, lanes) = view_and_lanes(&inst, &sol);
        assert!(view.lanes_ok());
        assert!(!lanes.usable(&view));
    }

    #[test]
    fn exact_boundary_fits() {
        // load + a == cap must fit (≤, not <) in both paths.
        let inst = Instance::new("b", 2, 2, vec![1, 1], vec![3, 4, 1, 2], vec![7, 3]).unwrap();
        let mut sol = Solution::empty(&inst);
        sol.add(&inst, 0); // loads [3, 1]; residuals [4, 2]
        let (view, lanes) = view_and_lanes(&inst, &sol);
        assert!(lanes.fits(&view, 1)); // weights [4, 2]: exact fill
        assert_eq!(lanes.fits(&view, 1), sol.fits(&inst, 1));
    }

    #[test]
    fn drop_score_table_is_bit_equal() {
        let inst = crate::generate::uncorrelated_instance("t", 30, 5, 0.5, 3);
        let view = SoaView::new(&inst);
        for i in 0..inst.m() {
            for j in 0..inst.n() {
                let a = view.drop_score(i, j);
                let b = drop_score(&inst, i, j);
                assert!(
                    a == b || (a.is_nan() && b.is_nan()),
                    "score ({i},{j}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn drop_order_ranks_scores_descending_with_index_ties() {
        let inst = crate::generate::uncorrelated_instance("o", 40, 6, 0.5, 9);
        let view = SoaView::new(&inst);
        for i in 0..inst.m() {
            let row = view.drop_score_row(i);
            let order = view.drop_order_row(i);
            let mut seen: Vec<usize> = order.to_vec();
            seen.sort_unstable();
            assert_eq!(seen, (0..inst.n()).collect::<Vec<_>>(), "permutation");
            for pair in order.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                assert!(
                    row[a] > row[b] || (row[a] == row[b] && a < b),
                    "constraint {i}: {a} before {b}"
                );
            }
        }
    }

    #[test]
    fn profit_order_descends_with_index_ties() {
        let inst = Instance::new("p", 4, 1, vec![5, 9, 5, 1], vec![1, 1, 1, 1], vec![4]).unwrap();
        let view = SoaView::new(&inst);
        assert_eq!(view.by_profit_desc(), &[1, 0, 2, 3]);
    }

    /// Random instance generator stressing the encoding edges: m not a
    /// multiple of the lane width, zero-weight items, tight capacities,
    /// and (sometimes) weights beyond the lane payload.
    fn arb_input(rng: &mut Xoshiro256) -> (Instance, Vec<usize>) {
        let n = gen::usize_in(rng, 2, 24);
        let m = gen::usize_in(rng, 1, 10);
        let oversized = gen::boolean(rng);
        let max_w = if oversized { LANE_MAX + 50 } else { 60 };
        let profits: Vec<i64> = (0..n).map(|_| gen::i64_in(rng, 0, 99)).collect();
        // Zero weights are common by construction.
        let weights: Vec<i64> = (0..n * m)
            .map(|_| {
                if gen::boolean(rng) {
                    0
                } else {
                    gen::i64_in(rng, 1, max_w)
                }
            })
            .collect();
        // Tight capacities: a small multiple of the mean row weight.
        let caps: Vec<i64> = (0..m).map(|_| gen::i64_in(rng, 0, 4 * max_w)).collect();
        let toggles = gen::vec_of(rng, 0, 50, |r| gen::usize_in(r, 0, n));
        (
            Instance::new("prop", n, m, profits, weights, caps).unwrap(),
            toggles,
        )
    }

    /// The core equivalence property: wherever the lane cache declares
    /// itself usable, its fits verdict equals the scalar reference for
    /// every unpacked item, across arbitrary add/drop trajectories.
    #[test]
    fn prop_lane_fits_equals_scalar() {
        prop_check!(|rng| arb_input(rng), |input| {
            let (inst, toggles) = input;
            let view = SoaView::new(inst);
            let mut lanes = ResidualLanes::new();
            let mut sol = Solution::empty(inst);
            lanes.sync(&view, inst, &sol);
            for &j in toggles.iter().filter(|&&j| j < inst.n()) {
                if sol.contains(j) {
                    sol.drop(inst, j);
                } else {
                    sol.add(inst, j);
                }
                lanes.sync(&view, inst, &sol);
                // The cache must refuse service exactly when the solution
                // is infeasible or a weight cannot be encoded.
                assert_eq!(
                    lanes.usable(&view),
                    view.lanes_ok() && sol.is_feasible(inst)
                );
                if !lanes.usable(&view) {
                    continue;
                }
                for q in 0..inst.n() {
                    if !sol.contains(q) {
                        assert_eq!(
                            lanes.fits(&view, q),
                            sol.fits(inst, q),
                            "item {q} after toggling {j}"
                        );
                    }
                }
            }
        });
    }
}
