//! # mkp — 0–1 multidimensional knapsack substrate
//!
//! Problem model, benchmark generators, constructive heuristics and cheap
//! bounds shared by every other crate in the workspace:
//!
//! * [`instance::Instance`] — immutable problem data with dual (row/item
//!   major) weight layouts;
//! * [`solution::Solution`] — assignments with O(m) incremental add/drop
//!   evaluation, the hot kernel of the tabu search;
//! * [`bitset::BitVec`] — packed bit vectors (Hamming distances between
//!   slave solutions drive the master's strategy adaptation);
//! * [`eval::Ratios`] — precomputed pseudo-utility/burden tables;
//! * [`soa::SoaView`] — structure-of-arrays evaluation view: lane-packed
//!   weight columns and cached residual capacities for word-parallel
//!   (SWAR) feasibility tests in the move kernels;
//! * [`greedy`] — constructive heuristics and the feasibility projection;
//! * [`generate`] — seeded re-creations of the paper's benchmark suites;
//! * [`bounds`] — Dantzig-style upper bounds;
//! * [`stats`] — instance-class statistics (tightness, correlation, …);
//! * [`restrict`] — variable-fixing subproblems for search-space decomposition;
//! * [`mod@format`] — OR-Library-compatible text I/O;
//! * [`rng::Xoshiro256`] — deterministic, forkable PRNG;
//! * [`testkit`] — in-tree property-testing harness ([`prop_check!`]).
//!
//! ```
//! use mkp::generate::{gk_instance, GkSpec};
//! use mkp::eval::Ratios;
//! use mkp::greedy::greedy;
//!
//! let inst = gk_instance("demo", GkSpec { n: 50, m: 5, tightness: 0.5, seed: 1 });
//! let ratios = Ratios::new(&inst);
//! let sol = greedy(&inst, &ratios);
//! assert!(sol.is_feasible(&inst));
//! ```

#![warn(missing_docs)]

pub mod bitset;
pub mod bounds;
pub mod eval;
pub mod format;
pub mod generate;
pub mod greedy;
pub mod instance;
pub mod restrict;
pub mod rng;
pub mod soa;
pub mod solution;
pub mod stats;
pub mod testkit;

pub use bitset::BitVec;
pub use instance::{Instance, InstanceError};
pub use rng::Xoshiro256;
pub use solution::Solution;
