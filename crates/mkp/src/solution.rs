//! Solutions with O(m) incremental add/drop evaluation.
//!
//! The tabu search performs millions of add/drop moves; recomputing the
//! objective and the `m` constraint loads from scratch would be O(n·m) per
//! move. A [`Solution`] therefore caches the objective value and per-
//! constraint loads and updates them incrementally in O(m) per move, the
//! central performance invariant of the whole system (checked by property
//! tests below).

use crate::bitset::BitVec;
use crate::instance::Instance;

/// A 0–1 assignment with cached objective value and constraint loads.
///
/// A `Solution` may be infeasible (strategic oscillation deliberately crosses
/// the feasibility boundary); [`Solution::is_feasible`] reports the current
/// state and [`Solution::total_overload`] quantifies the violation.
#[derive(Debug, PartialEq, Eq)]
pub struct Solution {
    bits: BitVec,
    value: i64,
    loads: Vec<i64>,
}

// Manual `Clone` so `clone_from` recycles the bit and load buffers — the
// move kernels restore trial solutions from scratch space every candidate
// evaluation, which must not touch the allocator on the steady-state path.
impl Clone for Solution {
    fn clone(&self) -> Self {
        Solution {
            bits: self.bits.clone(),
            value: self.value,
            loads: self.loads.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.bits.clone_from(&source.bits);
        self.value = source.value;
        self.loads.clone_from(&source.loads);
    }
}

impl Solution {
    /// The empty knapsack for `inst` (always feasible).
    pub fn empty(inst: &Instance) -> Self {
        Solution {
            bits: BitVec::zeros(inst.n()),
            value: 0,
            loads: vec![0; inst.m()],
        }
    }

    /// Build from an explicit assignment, computing value and loads.
    pub fn from_bits(inst: &Instance, bits: BitVec) -> Self {
        assert_eq!(bits.len(), inst.n(), "assignment length must equal n");
        let mut sol = Solution {
            bits,
            value: 0,
            loads: vec![0; inst.m()],
        };
        let mut value = 0i64;
        let mut loads = vec![0i64; inst.m()];
        for j in sol.bits.iter_ones() {
            value += inst.profit(j);
            for (load, &a) in loads.iter_mut().zip(inst.item_weights(j)) {
                *load += a;
            }
        }
        sol.value = value;
        sol.loads = loads;
        sol
    }

    /// The raw assignment bits.
    #[inline]
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Whether item `j` is packed.
    #[inline]
    pub fn contains(&self, j: usize) -> bool {
        self.bits.get(j)
    }

    /// Cached objective value `Σ c_j x_j`.
    #[inline]
    pub fn value(&self) -> i64 {
        self.value
    }

    /// Cached load of constraint `i`, `Σ_j a_ij x_j`.
    #[inline]
    pub fn load(&self, i: usize) -> i64 {
        self.loads[i]
    }

    /// All cached loads.
    #[inline]
    pub fn loads(&self) -> &[i64] {
        &self.loads
    }

    /// Remaining slack of constraint `i`: `b_i − load_i` (negative when
    /// violated).
    #[inline]
    pub fn slack(&self, inst: &Instance, i: usize) -> i64 {
        inst.capacity(i) - self.loads[i]
    }

    /// Number of packed items.
    pub fn cardinality(&self) -> usize {
        self.bits.count_ones()
    }

    /// True when every constraint is satisfied.
    pub fn is_feasible(&self, inst: &Instance) -> bool {
        self.loads
            .iter()
            .zip(inst.capacities())
            .all(|(&load, &cap)| load <= cap)
    }

    /// Total constraint violation `Σ_i max(0, load_i − b_i)`.
    pub fn total_overload(&self, inst: &Instance) -> i64 {
        self.loads
            .iter()
            .zip(inst.capacities())
            .map(|(&load, &cap)| (load - cap).max(0))
            .sum()
    }

    /// Would adding item `j` keep the solution feasible?
    ///
    /// Item must currently be out of the knapsack.
    #[inline(always)]
    pub fn fits(&self, inst: &Instance, j: usize) -> bool {
        debug_assert!(!self.contains(j), "fits({j}) on packed item");
        self.loads
            .iter()
            .zip(inst.item_weights(j))
            .zip(inst.capacities())
            .all(|((&load, &a), &cap)| load + a <= cap)
    }

    /// Pack item `j` (must currently be out), updating caches in O(m).
    /// The result may be infeasible; callers doing feasible-only search must
    /// guard with [`Solution::fits`].
    #[inline]
    pub fn add(&mut self, inst: &Instance, j: usize) {
        assert!(!self.bits.get(j), "add({j}): item already packed");
        self.bits.set(j, true);
        self.value += inst.profit(j);
        for (load, &a) in self.loads.iter_mut().zip(inst.item_weights(j)) {
            *load += a;
        }
    }

    /// Remove item `j` (must currently be in), updating caches in O(m).
    #[inline]
    pub fn drop(&mut self, inst: &Instance, j: usize) {
        assert!(self.bits.get(j), "drop({j}): item not packed");
        self.bits.set(j, false);
        self.value -= inst.profit(j);
        for (load, &a) in self.loads.iter_mut().zip(inst.item_weights(j)) {
            *load -= a;
        }
    }

    /// Index of the most saturated constraint: the one with minimum slack
    /// `b_i − load_i` (paper §3.1, Drop step). Ties break to the smallest
    /// index for determinism.
    pub fn most_saturated_constraint(&self, inst: &Instance) -> usize {
        let mut best = 0usize;
        let mut best_slack = inst.capacity(0) - self.loads[0];
        for i in 1..inst.m() {
            let slack = inst.capacity(i) - self.loads[i];
            if slack < best_slack {
                best = i;
                best_slack = slack;
            }
        }
        best
    }

    /// Hamming distance to another solution of the same length.
    pub fn hamming(&self, other: &Solution) -> usize {
        self.bits.hamming(&other.bits)
    }

    /// Recompute value and loads from scratch and compare with the caches.
    /// Used by tests and debug assertions to validate incremental updates.
    pub fn check_consistent(&self, inst: &Instance) -> bool {
        let fresh = Solution::from_bits(inst, self.bits.clone());
        fresh.value == self.value && fresh.loads == self.loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::prop_check;
    use crate::testkit::gen;
    use crate::Xoshiro256;

    fn tiny() -> Instance {
        Instance::new(
            "tiny",
            3,
            2,
            vec![10, 6, 4],
            vec![5, 4, 3, 1, 2, 3],
            vec![8, 4],
        )
        .unwrap()
    }

    #[test]
    fn empty_solution() {
        let inst = tiny();
        let sol = Solution::empty(&inst);
        assert_eq!(sol.value(), 0);
        assert_eq!(sol.loads(), &[0, 0]);
        assert!(sol.is_feasible(&inst));
        assert_eq!(sol.cardinality(), 0);
    }

    #[test]
    fn add_updates_caches() {
        let inst = tiny();
        let mut sol = Solution::empty(&inst);
        sol.add(&inst, 0);
        assert_eq!(sol.value(), 10);
        assert_eq!(sol.loads(), &[5, 1]);
        sol.add(&inst, 2);
        assert_eq!(sol.value(), 14);
        assert_eq!(sol.loads(), &[8, 4]);
        assert!(sol.is_feasible(&inst));
        assert!(sol.check_consistent(&inst));
    }

    #[test]
    fn drop_reverses_add() {
        let inst = tiny();
        let mut sol = Solution::empty(&inst);
        sol.add(&inst, 1);
        sol.add(&inst, 2);
        sol.drop(&inst, 1);
        assert_eq!(sol.value(), 4);
        assert_eq!(sol.loads(), &[3, 3]);
        assert!(sol.check_consistent(&inst));
    }

    #[test]
    #[should_panic(expected = "already packed")]
    fn double_add_panics() {
        let inst = tiny();
        let mut sol = Solution::empty(&inst);
        sol.add(&inst, 0);
        sol.add(&inst, 0);
    }

    #[test]
    #[should_panic(expected = "not packed")]
    fn drop_missing_panics() {
        let inst = tiny();
        let mut sol = Solution::empty(&inst);
        sol.drop(&inst, 0);
    }

    #[test]
    fn fits_detects_overflow() {
        let inst = tiny();
        let mut sol = Solution::empty(&inst);
        sol.add(&inst, 0); // loads [5,1]
        assert!(!sol.fits(&inst, 1)); // would be [9,3] > [8,4] on constraint 0
        assert!(sol.fits(&inst, 2)); // [8,4] exactly
    }

    #[test]
    fn infeasible_state_tracked() {
        let inst = tiny();
        let mut sol = Solution::empty(&inst);
        sol.add(&inst, 0);
        sol.add(&inst, 1); // loads [9,3]: violates constraint 0
        assert!(!sol.is_feasible(&inst));
        assert_eq!(sol.total_overload(&inst), 1);
        assert_eq!(sol.slack(&inst, 0), -1);
    }

    #[test]
    fn most_saturated_picks_min_slack() {
        let inst = tiny();
        let mut sol = Solution::empty(&inst);
        sol.add(&inst, 2); // loads [3,3] → slacks [5,1]
        assert_eq!(sol.most_saturated_constraint(&inst), 1);
    }

    #[test]
    fn most_saturated_tie_breaks_low_index() {
        let inst = Instance::new("t", 1, 2, vec![1], vec![1, 1], vec![5, 5]).unwrap();
        let sol = Solution::empty(&inst);
        assert_eq!(sol.most_saturated_constraint(&inst), 0);
    }

    #[test]
    fn from_bits_matches_manual() {
        let inst = tiny();
        let bits = BitVec::from_bools([true, false, true]);
        let sol = Solution::from_bits(&inst, bits);
        assert_eq!(sol.value(), 14);
        assert_eq!(sol.loads(), &[8, 4]);
    }

    #[test]
    fn hamming_between_solutions() {
        let inst = tiny();
        let a = Solution::from_bits(&inst, BitVec::from_bools([true, false, true]));
        let b = Solution::from_bits(&inst, BitVec::from_bools([false, false, true]));
        assert_eq!(a.hamming(&b), 1);
    }

    /// Generator producing a small random instance plus a random move
    /// script (indices < n, so the script survives instance atomicity
    /// under shrinking by simply skipping out-of-range entries).
    fn arb_instance_and_moves(rng: &mut Xoshiro256) -> (Instance, Vec<usize>) {
        let n = gen::usize_in(rng, 2, 20);
        let m = gen::usize_in(rng, 1, 6);
        let profits: Vec<i64> = (0..n).map(|_| gen::i64_in(rng, 0, 99)).collect();
        let weights: Vec<i64> = (0..n * m).map(|_| gen::i64_in(rng, 0, 49)).collect();
        let caps: Vec<i64> = (0..m).map(|_| gen::i64_in(rng, 10, 199)).collect();
        let moves = gen::vec_of(rng, 0, 40, |r| gen::usize_in(r, 0, n));
        (
            Instance::new("prop", n, m, profits, weights, caps).unwrap(),
            moves,
        )
    }

    /// Core invariant: any sequence of toggles keeps the incremental
    /// caches equal to a from-scratch recomputation.
    #[test]
    fn prop_incremental_equals_scratch() {
        prop_check!(|rng| arb_instance_and_moves(rng), |input| {
            let (inst, moves) = input;
            let mut sol = Solution::empty(inst);
            for &j in moves.iter().filter(|&&j| j < inst.n()) {
                if sol.contains(j) {
                    sol.drop(inst, j);
                } else {
                    sol.add(inst, j);
                }
                assert!(sol.check_consistent(inst));
            }
        });
    }

    /// `fits` is exactly "add would remain feasible" for feasible states.
    #[test]
    fn prop_fits_predicts_feasibility() {
        prop_check!(|rng| arb_instance_and_moves(rng), |input| {
            let (inst, moves) = input;
            let mut sol = Solution::empty(inst);
            for &j in moves.iter().filter(|&&j| j < inst.n()) {
                if sol.contains(j) {
                    sol.drop(inst, j);
                    continue;
                }
                if !sol.is_feasible(inst) {
                    continue;
                }
                let fits = sol.fits(inst, j);
                sol.add(inst, j);
                assert_eq!(fits, sol.is_feasible(inst));
            }
        });
    }

    /// Overload is zero iff feasible.
    #[test]
    fn prop_overload_zero_iff_feasible() {
        prop_check!(|rng| arb_instance_and_moves(rng), |input| {
            let (inst, moves) = input;
            let mut sol = Solution::empty(inst);
            for &j in moves.iter().filter(|&&j| j < inst.n()) {
                if sol.contains(j) {
                    sol.drop(inst, j);
                } else {
                    sol.add(inst, j);
                }
                assert_eq!(sol.total_overload(inst) == 0, sol.is_feasible(inst));
            }
        });
    }
}
