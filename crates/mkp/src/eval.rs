//! Pseudo-utility ratios and item orderings shared by the heuristics.
//!
//! Three item measures drive the paper's move machinery:
//!
//! * **pseudo-utility** `u_j = c_j / Σ_i a_ij / b_i` — the classic
//!   capacity-normalised bang-per-buck used by the greedy Add phase;
//! * **burden** `w_j = Σ_i a_ij / c_j` — the "cost of keeping item j"; the
//!   strategic-oscillation projection expels items with the largest burden;
//! * **drop score** `a_{i*j} / c_j` against the most saturated constraint
//!   `i*` — the Drop step removes the packed item maximising it.
//!
//! The first two depend only on the instance and are precomputed once into a
//! [`Ratios`] table; the drop score depends on the current solution and is
//! computed on the fly by the move code.

use crate::instance::Instance;
use crate::soa::SoaView;

/// Precomputed per-item ratios for an instance.
#[derive(Debug, Clone)]
pub struct Ratios {
    pseudo_utility: Vec<f64>,
    burden: Vec<f64>,
    /// Item indices sorted by descending pseudo-utility (ties by index).
    by_utility_desc: Vec<usize>,
    /// Structure-of-arrays evaluation view (lane-packed weights, drop-score
    /// tables) built alongside the ratios so every hot path that already
    /// carries a `&Ratios` gets the word-parallel kernels for free.
    view: SoaView,
}

impl Ratios {
    /// Compute the ratio tables for `inst` in O(n·m).
    pub fn new(inst: &Instance) -> Self {
        let n = inst.n();
        let mut pseudo_utility = Vec::with_capacity(n);
        let mut burden = Vec::with_capacity(n);
        for j in 0..n {
            let mut norm = 0.0f64;
            for (i, &a) in inst.item_weights(j).iter().enumerate() {
                let b = inst.capacity(i);
                if b > 0 {
                    norm += a as f64 / b as f64;
                } else if a > 0 {
                    // Zero capacity with positive weight: the item can never
                    // be packed; treat its normalised weight as infinite.
                    norm = f64::INFINITY;
                    break;
                }
            }
            let c = inst.profit(j) as f64;
            pseudo_utility.push(if norm == 0.0 {
                // Weightless item: infinitely attractive (free profit).
                f64::INFINITY
            } else {
                c / norm
            });
            burden.push(if c == 0.0 {
                // Profitless item carrying weight: infinitely burdensome.
                if inst.item_weight_sum(j) > 0 {
                    f64::INFINITY
                } else {
                    0.0
                }
            } else {
                inst.item_weight_sum(j) as f64 / c
            });
        }
        let mut by_utility_desc: Vec<usize> = (0..n).collect();
        by_utility_desc.sort_by(|&a, &b| {
            pseudo_utility[b]
                .partial_cmp(&pseudo_utility[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut view = SoaView::new(inst);
        // The Add scan walks the utility ranking; give the view's
        // pre-filter rows the same order so those loads stream.
        view.set_scan_order(&by_utility_desc);
        Ratios {
            pseudo_utility,
            burden,
            by_utility_desc,
            view,
        }
    }

    /// A perturbed copy of the ratio tables: each pseudo-utility is scaled
    /// by an independent factor uniform in `[1 − strength, 1 + strength]`
    /// and the utility ranking re-sorted, so greedy fills over the result
    /// explore different (but still profit-density-guided) construction
    /// orders. Burdens are left exact — repair decisions stay unbiased.
    /// Deterministic for a given rng state; `strength` must be in `[0, 1)`.
    pub fn perturbed(inst: &Instance, rng: &mut crate::Xoshiro256, strength: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&strength),
            "perturbation strength {strength} outside [0, 1)"
        );
        let mut ratios = Ratios::new(inst);
        for u in &mut ratios.pseudo_utility {
            // ∞ stays ∞ (weightless items stay first), finite values jitter.
            if u.is_finite() {
                *u *= 1.0 + strength * (2.0 * rng.next_f64() - 1.0);
            }
        }
        ratios.by_utility_desc.sort_by(|&a, &b| {
            ratios.pseudo_utility[b]
                .partial_cmp(&ratios.pseudo_utility[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        ratios.view.set_scan_order(&ratios.by_utility_desc);
        ratios
    }

    /// Pseudo-utility `u_j` (higher = more attractive to add).
    #[inline]
    pub fn pseudo_utility(&self, j: usize) -> f64 {
        self.pseudo_utility[j]
    }

    /// Burden `w_j` (higher = better candidate to expel).
    #[inline]
    pub fn burden(&self, j: usize) -> f64 {
        self.burden[j]
    }

    /// Items ordered by descending pseudo-utility.
    #[inline]
    pub fn by_utility_desc(&self) -> &[usize] {
        &self.by_utility_desc
    }

    /// The structure-of-arrays evaluation view (see [`crate::soa`]).
    #[inline]
    pub fn view(&self) -> &SoaView {
        &self.view
    }
}

/// Drop score of packed item `j` against constraint `i`: `a_ij / c_j`
/// (∞ for a profitless item with positive weight — always drop it first).
#[inline]
pub fn drop_score(inst: &Instance, i: usize, j: usize) -> f64 {
    let c = inst.profit(j);
    let a = inst.weight(i, j);
    if c == 0 {
        if a > 0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        a as f64 / c as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;

    fn inst() -> Instance {
        Instance::new(
            "r",
            3,
            2,
            vec![10, 6, 4],
            vec![5, 4, 3, 1, 2, 3],
            vec![8, 4],
        )
        .unwrap()
    }

    #[test]
    fn pseudo_utility_values() {
        let r = Ratios::new(&inst());
        // u_0 = 10 / (5/8 + 1/4) = 10 / 0.875
        assert!((r.pseudo_utility(0) - 10.0 / 0.875).abs() < 1e-9);
        // u_1 = 6 / (4/8 + 2/4) = 6
        assert!((r.pseudo_utility(1) - 6.0).abs() < 1e-9);
        // u_2 = 4 / (3/8 + 3/4) = 4 / 1.125
        assert!((r.pseudo_utility(2) - 4.0 / 1.125).abs() < 1e-9);
    }

    #[test]
    fn burden_values() {
        let r = Ratios::new(&inst());
        assert!((r.burden(0) - 6.0 / 10.0).abs() < 1e-9);
        assert!((r.burden(1) - 1.0).abs() < 1e-9);
        assert!((r.burden(2) - 6.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn utility_order_descending() {
        let r = Ratios::new(&inst());
        let order = r.by_utility_desc();
        for w in order.windows(2) {
            assert!(r.pseudo_utility(w[0]) >= r.pseudo_utility(w[1]));
        }
        assert_eq!(order[0], 0); // item 0 has the highest utility here
    }

    #[test]
    fn zero_profit_item_is_infinitely_burdensome() {
        let i = Instance::new("z", 2, 1, vec![0, 5], vec![3, 3], vec![10]).unwrap();
        let r = Ratios::new(&i);
        assert!(r.burden(0).is_infinite());
        assert!(r.burden(1).is_finite());
    }

    #[test]
    fn weightless_item_is_infinitely_attractive() {
        let i = Instance::new("w", 2, 1, vec![5, 5], vec![0, 3], vec![10]).unwrap();
        let r = Ratios::new(&i);
        assert!(r.pseudo_utility(0).is_infinite());
        assert_eq!(r.by_utility_desc()[0], 0);
    }

    #[test]
    fn zero_capacity_handled() {
        let i = Instance::new("zc", 2, 1, vec![5, 5], vec![1, 0], vec![0]).unwrap();
        let r = Ratios::new(&i);
        // Item 0 needs capacity that doesn't exist: norm = ∞, so u = c/∞ = 0.
        assert_eq!(r.pseudo_utility(0), 0.0);
        // Item 1 is weightless → ∞.
        assert!(r.pseudo_utility(1).is_infinite());
    }

    #[test]
    fn drop_score_basic() {
        let i = inst();
        assert!((drop_score(&i, 0, 0) - 0.5).abs() < 1e-12);
        assert!((drop_score(&i, 1, 2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn drop_score_zero_profit_infinite() {
        let i = Instance::new("z", 1, 1, vec![0], vec![3], vec![10]).unwrap();
        assert!(drop_score(&i, 0, 0).is_infinite());
    }
}
