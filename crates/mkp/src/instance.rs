//! The 0–1 multidimensional knapsack problem instance.
//!
//! ```text
//! maximize    Σ_j c_j x_j
//! subject to  Σ_j a_ij x_j ≤ b_i   for i = 1..m
//!             x_j ∈ {0, 1}
//! ```
//!
//! All data are non-negative integers (`i64`), matching the classic benchmark
//! suites; integer arithmetic keeps incremental evaluation exact and lets the
//! exact solver certify optima without rounding concerns.

use std::fmt;

/// Errors raised when constructing an [`Instance`] from raw data.
#[allow(missing_docs)] // field names are self-describing
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// The instance has no items or no constraints.
    EmptyDimension { n: usize, m: usize },
    /// `weights.len()` is not `n * m`.
    WeightShape { expected: usize, got: usize },
    /// `capacities.len()` is not `m`.
    CapacityShape { expected: usize, got: usize },
    /// A profit, weight or capacity is negative.
    NegativeData {
        what: &'static str,
        index: usize,
        value: i64,
    },
    /// Item `j` cannot fit in any solution: some `a_ij > b_i`.
    // Not an error in general MKP, but generators should not emit such items;
    // kept as a *warning-level* validation available separately.
    _Reserved,
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::EmptyDimension { n, m } => {
                write!(f, "instance must have items and constraints (n={n}, m={m})")
            }
            InstanceError::WeightShape { expected, got } => {
                write!(f, "weight matrix must hold {expected} entries, got {got}")
            }
            InstanceError::CapacityShape { expected, got } => {
                write!(f, "capacity vector must hold {expected} entries, got {got}")
            }
            InstanceError::NegativeData { what, index, value } => {
                write!(f, "{what}[{index}] = {value} is negative")
            }
            InstanceError::_Reserved => write!(f, "reserved"),
        }
    }
}

impl std::error::Error for InstanceError {}

/// An immutable 0–1 MKP instance.
///
/// The weight matrix is stored twice: once row-major by constraint (for
/// whole-constraint scans such as finding the most saturated constraint) and
/// once item-major (for the hot add/drop load updates, which touch all `m`
/// weights of a single item — keeping them contiguous is the cache-friendly
/// layout). `m` is small (≤ 30 in every benchmark here) so the duplication is
/// cheap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    name: String,
    n: usize,
    m: usize,
    profits: Vec<i64>,
    /// Row-major: `by_constraint[i * n + j] = a_ij`.
    by_constraint: Vec<i64>,
    /// Item-major: `by_item[j * m + i] = a_ij`.
    by_item: Vec<i64>,
    capacities: Vec<i64>,
    best_known: Option<i64>,
}

impl Instance {
    /// Construct an instance from row-major weights (`weights[i * n + j]`).
    pub fn new(
        name: impl Into<String>,
        n: usize,
        m: usize,
        profits: Vec<i64>,
        weights: Vec<i64>,
        capacities: Vec<i64>,
    ) -> Result<Self, InstanceError> {
        if n == 0 || m == 0 {
            return Err(InstanceError::EmptyDimension { n, m });
        }
        if profits.len() != n {
            return Err(InstanceError::WeightShape {
                expected: n,
                got: profits.len(),
            });
        }
        if weights.len() != n * m {
            return Err(InstanceError::WeightShape {
                expected: n * m,
                got: weights.len(),
            });
        }
        if capacities.len() != m {
            return Err(InstanceError::CapacityShape {
                expected: m,
                got: capacities.len(),
            });
        }
        for (j, &c) in profits.iter().enumerate() {
            if c < 0 {
                return Err(InstanceError::NegativeData {
                    what: "profit",
                    index: j,
                    value: c,
                });
            }
        }
        for (k, &a) in weights.iter().enumerate() {
            if a < 0 {
                return Err(InstanceError::NegativeData {
                    what: "weight",
                    index: k,
                    value: a,
                });
            }
        }
        for (i, &b) in capacities.iter().enumerate() {
            if b < 0 {
                return Err(InstanceError::NegativeData {
                    what: "capacity",
                    index: i,
                    value: b,
                });
            }
        }
        let mut by_item = vec![0i64; n * m];
        for i in 0..m {
            for j in 0..n {
                by_item[j * m + i] = weights[i * n + j];
            }
        }
        Ok(Instance {
            name: name.into(),
            n,
            m,
            profits,
            by_constraint: weights,
            by_item,
            capacities,
            best_known: None,
        })
    }

    /// Attach a best-known objective value (used by report tooling).
    pub fn with_best_known(mut self, value: i64) -> Self {
        self.best_known = Some(value);
        self
    }

    /// Instance label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of items (variables).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of knapsack constraints.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Profit `c_j`.
    #[inline]
    pub fn profit(&self, j: usize) -> i64 {
        self.profits[j]
    }

    /// All profits.
    #[inline]
    pub fn profits(&self) -> &[i64] {
        &self.profits
    }

    /// Weight `a_ij`.
    #[inline]
    pub fn weight(&self, i: usize, j: usize) -> i64 {
        self.by_constraint[i * self.n + j]
    }

    /// Row `i` of the weight matrix, one entry per item.
    #[inline]
    pub fn constraint_row(&self, i: usize) -> &[i64] {
        &self.by_constraint[i * self.n..(i + 1) * self.n]
    }

    /// The `m` weights of item `j`, one entry per constraint (contiguous).
    #[inline]
    pub fn item_weights(&self, j: usize) -> &[i64] {
        &self.by_item[j * self.m..(j + 1) * self.m]
    }

    /// Capacity `b_i`.
    #[inline]
    pub fn capacity(&self, i: usize) -> i64 {
        self.capacities[i]
    }

    /// All capacities.
    #[inline]
    pub fn capacities(&self) -> &[i64] {
        &self.capacities
    }

    /// Best objective value known for this instance, if recorded.
    pub fn best_known(&self) -> Option<i64> {
        self.best_known
    }

    /// Sum of weights of item `j` across all constraints, `Σ_i a_ij`.
    pub fn item_weight_sum(&self, j: usize) -> i64 {
        self.item_weights(j).iter().sum()
    }

    /// Upper bound on the objective: sum of all profits.
    pub fn profit_sum(&self) -> i64 {
        self.profits.iter().sum()
    }

    /// True when item `j` alone violates some constraint (can never be packed).
    pub fn item_oversized(&self, j: usize) -> bool {
        self.item_weights(j)
            .iter()
            .zip(&self.capacities)
            .any(|(&a, &b)| a > b)
    }

    /// Tightness ratio per constraint: `b_i / Σ_j a_ij` (1.0 when the row is
    /// all-zero). Benchmarks usually sit around 0.25–0.75; used by tests and
    /// generator validation.
    pub fn tightness(&self) -> Vec<f64> {
        (0..self.m)
            .map(|i| {
                let total: i64 = self.constraint_row(i).iter().sum();
                if total == 0 {
                    1.0
                } else {
                    self.capacity(i) as f64 / total as f64
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Instance {
        // 3 items, 2 constraints.
        Instance::new(
            "tiny",
            3,
            2,
            vec![10, 6, 4],
            vec![
                5, 4, 3, // constraint 0
                1, 2, 3, // constraint 1
            ],
            vec![8, 4],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let inst = tiny();
        assert_eq!(inst.n(), 3);
        assert_eq!(inst.m(), 2);
        assert_eq!(inst.profit(0), 10);
        assert_eq!(inst.weight(0, 2), 3);
        assert_eq!(inst.weight(1, 0), 1);
        assert_eq!(inst.capacity(1), 4);
        assert_eq!(inst.constraint_row(0), &[5, 4, 3]);
        assert_eq!(inst.item_weights(1), &[4, 2]);
        assert_eq!(inst.profit_sum(), 20);
        assert_eq!(inst.item_weight_sum(2), 6);
    }

    #[test]
    fn item_major_layout_matches_row_major() {
        let inst = tiny();
        for i in 0..inst.m() {
            for j in 0..inst.n() {
                assert_eq!(inst.weight(i, j), inst.item_weights(j)[i]);
            }
        }
    }

    #[test]
    fn rejects_empty() {
        let err = Instance::new("e", 0, 1, vec![], vec![], vec![1]).unwrap_err();
        assert!(matches!(err, InstanceError::EmptyDimension { .. }));
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(matches!(
            Instance::new("e", 2, 1, vec![1, 2], vec![1], vec![1]).unwrap_err(),
            InstanceError::WeightShape { .. }
        ));
        assert!(matches!(
            Instance::new("e", 2, 1, vec![1, 2], vec![1, 2], vec![]).unwrap_err(),
            InstanceError::CapacityShape { .. }
        ));
        assert!(matches!(
            Instance::new("e", 2, 1, vec![1], vec![1, 2], vec![3]).unwrap_err(),
            InstanceError::WeightShape { .. }
        ));
    }

    #[test]
    fn rejects_negative_data() {
        let err = Instance::new("e", 2, 1, vec![1, -2], vec![1, 2], vec![3]).unwrap_err();
        assert!(matches!(
            err,
            InstanceError::NegativeData { what: "profit", .. }
        ));
        let err = Instance::new("e", 2, 1, vec![1, 2], vec![1, -2], vec![3]).unwrap_err();
        assert!(matches!(
            err,
            InstanceError::NegativeData { what: "weight", .. }
        ));
        let err = Instance::new("e", 2, 1, vec![1, 2], vec![1, 2], vec![-3]).unwrap_err();
        assert!(matches!(
            err,
            InstanceError::NegativeData {
                what: "capacity",
                ..
            }
        ));
    }

    #[test]
    fn oversized_item_detection() {
        let inst = Instance::new("o", 2, 1, vec![5, 5], vec![10, 3], vec![4]).unwrap();
        assert!(inst.item_oversized(0));
        assert!(!inst.item_oversized(1));
    }

    #[test]
    fn tightness_computation() {
        let inst = tiny();
        let t = inst.tightness();
        assert!((t[0] - 8.0 / 12.0).abs() < 1e-12);
        assert!((t[1] - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn best_known_roundtrip() {
        let inst = tiny().with_best_known(16);
        assert_eq!(inst.best_known(), Some(16));
    }

    #[test]
    fn error_display_is_informative() {
        let err = Instance::new("e", 0, 0, vec![], vec![], vec![]).unwrap_err();
        assert!(err.to_string().contains("n=0"));
    }
}
