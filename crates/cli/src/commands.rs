//! The CLI subcommands. Each returns the text it would print, so the unit
//! tests can exercise the full command path without capturing stdout.

use crate::args::{ArgError, Args};
use mkp::eval::Ratios;
use mkp::generate::{
    chu_beasley_instance, gk_instance, large_instance, uncorrelated_instance, GkSpec, LargeSpec,
};
use mkp::greedy::greedy;
use mkp::stats::instance_stats;
use mkp::Instance;
use parallel_tabu::{
    attach_job, fault_at_round, run_remote_with, serve, serve_slave_with, submit_job,
    CheckpointCfg, Endpoint, Engine, FaultAction, FaultPlan, Mode, NetFaultPlan, NetFaultState,
    RunConfig, ServeBackend, ServeConfig, ServeOutcome, Snapshot, SubmitEvent, SubmitOutcome,
    SubmitSpec,
};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Top-level command failures.
#[derive(Debug)]
pub enum CliError {
    /// Argument problems.
    Args(ArgError),
    /// Filesystem problems.
    Io(String),
    /// Instance parse problems.
    Parse(String),
    /// Semantic problems (unknown class, unknown mode, …).
    Invalid(String),
    /// The engine could not produce a result (e.g. every worker lost).
    Engine(String),
    /// The run *finished* but lost workers along the way. Carries the full
    /// solve output; `main` prints it and exits with the degraded code so
    /// scripts notice without losing the result.
    Degraded(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Parse(e) => write!(f, "parse error: {e}"),
            CliError::Invalid(e) => write!(f, "{e}"),
            CliError::Engine(e) => write!(f, "engine error: {e}"),
            CliError::Degraded(out) => write!(f, "{out}"),
        }
    }
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

/// Usage text (also shown on `mkp help`).
pub const USAGE: &str = "\
mkp — 0-1 multidimensional knapsack toolkit
  (reproduction of Niar & Fréville's parallel tabu search, IPPS 1997)

USAGE:
  mkp generate <out.mkp> [--class gk|cb|uniform|large] [--n N] [--m M]
               [--tightness T] [--correlation C] [--seed S]
  mkp stats    <instance.mkp>
  mkp solve    <instance.mkp> [--mode seq|its|cts1|cts2|ats|dts]
               [--policy core|repair]
               [--p P] [--rounds R] [--budget EVALS] [--seed S]
               [--relink true|false] [--timeout SECS] [--patience SECS]
               [--restarts N] [--backoff MS]
               [--checkpoint FILE] [--checkpoint-every K] [--resume FILE]
               [--fault kill@K:R|kill-repeat@K:R|delay@K:R:MS]
               [--metrics FILE] [--trace FILE]
               [--listen unix:PATH|tcp:HOST:PORT] [--net-fault SPEC]
  mkp slave    --connect unix:PATH|tcp:HOST:PORT [--patience SECS]
               [--net-fault SPEC]
  mkp serve    --clients unix:PATH|tcp:HOST:PORT [--slaves ADDR] [--p P]
               [--quantum ROUNDS] [--max-queue N] [--max-inflight N]
               [--max-jobs N] [--park-mem BYTES] [--spool DIR]
               [--state-dir DIR] [--patience SECS]
  mkp submit   <instance.mkp> --connect unix:PATH|tcp:HOST:PORT
               [--mode seq|its|cts1|cts2|ats|dts] [--policy core|repair]
               [--p P] [--rounds R]
               [--budget EVALS] [--seed S] [--deadline-ms MS]
               [--attach JOB_ID] [--patience SECS]
  mkp exact    <instance.mkp> [--nodes LIMIT] [--workers W]
  mkp validate-metrics <metrics.json>
  mkp help

--policy core runs CTS2 inside an LP-reduced-cost *promising core* (the
confidently-decided variables are fixed and periodically re-identified
from the incumbent); --policy repair runs independent randomized
greedy-construction + feasibility-repair restarts. Both are full engine
citizens: checkpoint/resume, --fault, --listen and --metrics work
unchanged. --policy and --mode are mutually exclusive. --class large
generates the very-large benchmark class the policies target (--n in the
thousands, --m in the hundreds, --correlation tuning the profit–weight
coupling).

Fault specs number workers from 1 (worker 0 is the master). With
--restarts N the master resurrects a lost worker up to N times per worker
(exponential backoff from --backoff ms) before quarantining it; a fully
healed run exits 0. A solve that still loses workers prints its result,
listing the losses, and exits with code 2 so scripts can tell a degraded
run from a clean one.

--checkpoint FILE writes the complete master state to FILE every
--checkpoint-every K rounds (synchronous modes only); --resume FILE
continues such a snapshot — with the same instance and flags — to a result
bit-identical to the uninterrupted run.

--listen ADDR runs the solve as a *distributed* master: instead of the
in-process pool it waits for P `mkp slave --connect ADDR` processes (which
may be on other machines for tcp:), drives the identical protocol over the
socket, and heals a killed slave by adopting its reconnect. Fault injection
(--fault) and checkpointing are in-process features and are rejected with
--listen. `mkp slave` serves one run and exits 0 after the master's STOP;
--patience bounds every wait (for the master to appear, for the next
instruction, for a reconnect to succeed).

`mkp serve` runs a multi-tenant job server: clients `mkp submit` whole
jobs (instance + mode + budget + optional --deadline-ms) to --clients and
stream back acceptance, per-slice incumbents, and the final report. The
scheduler time-slices one persistent farm across jobs in --quantum-round
turns; --max-queue and --max-inflight bound admission, --max-jobs N makes
the server exit 0 after N jobs settle (for scripted runs). Without
--slaves the farm is an in-process pool of P workers; with --slaves ADDR
it is P `mkp slave --connect ADDR` processes, which stay connected across
jobs and exit 0 when the server shuts down. A submit whose job is refused
or misses its deadline exits 1 with the server's reason; a submit (or
slave) whose far end goes silent exits 2, the shared degraded code.

--state-dir DIR makes the job server crash-safe: accepted jobs are
journaled to DIR/journal.mkpj (appended and fsynced before the client
hears ACCEPTED), parked snapshots are written through to DIR/spool/, and
a server restarted on the same --state-dir replays the journal and
resumes every in-flight job from its last parked snapshot, bit-identical
to an uninterrupted run. Submissions carry an idempotency token, so a
client that loses the link after acceptance auto-reattaches on its own;
`mkp submit --attach JOB_ID` reattaches *explicitly* — after a client
restart — and streams the rest of the job (or fetches its recently
retained final report). SIGTERM drains the server gracefully: it stops
admitting, parks everything durably, compacts the journal, and exits 0.

--net-fault SPEC arms one planned network fault on the sending side —
drop@N, dup@N, truncate@N, corrupt@N or delay@N:MS, counting data frames
from 1 — on `mkp slave` (slave→master sends) or on `mkp solve --listen`
(master→slave sends). Every frame carries a checksum trailer, so a
corrupt frame is dropped and counted (see corrupt_drops in --metrics)
rather than trusted, and the link-level retry machinery heals the rest.

--metrics FILE dumps the run's telemetry counters as deterministic JSON
(byte-identical across repeats of the same seeded run); --trace FILE dumps
span timings and the causally ordered event trace as JSON lines. Both are
written even when the solve exits degraded. `mkp validate-metrics` checks
a metrics file against the schema and exits non-zero on any violation.
";

fn read_instance(path: &str) -> Result<Instance, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    mkp::format::parse_instance(path, &text).map_err(|e| CliError::Parse(e.to_string()))
}

/// `mkp generate`.
pub fn cmd_generate(args: &Args) -> Result<String, CliError> {
    let out_path = args.positional(0, "out.mkp")?.to_string();
    let class = args.get_str("class").unwrap_or("gk").to_string();
    let n: usize = args.get("n", 100)?;
    let m: usize = args.get("m", 5)?;
    let tightness: f64 = args.get("tightness", 0.5)?;
    let correlation: f64 = args.get("correlation", 0.5)?;
    let seed: u64 = args.get("seed", 1)?;
    if args.get_str("correlation").is_some() && class != "large" {
        return Err(CliError::Invalid(
            "--correlation only applies to --class large".into(),
        ));
    }
    let name = format!("{class}_{m}x{n}_s{seed}");
    let inst = match class.as_str() {
        "gk" => gk_instance(
            &name,
            GkSpec {
                n,
                m,
                tightness,
                seed,
            },
        ),
        "cb" => chu_beasley_instance(&name, n, m, tightness, seed),
        "uniform" => uncorrelated_instance(&name, n, m, tightness, seed),
        "large" => {
            if !(0.0..=1.0).contains(&correlation) {
                return Err(CliError::Invalid(format!(
                    "correlation {correlation} outside [0, 1]"
                )));
            }
            if !(0.05..=0.95).contains(&tightness) {
                return Err(CliError::Invalid(format!(
                    "tightness {tightness} outside the large class's [0.05, 0.95]"
                )));
            }
            large_instance(
                &name,
                LargeSpec {
                    n,
                    m,
                    tightness,
                    correlation,
                    seed,
                },
            )
        }
        other => {
            return Err(CliError::Invalid(format!(
                "unknown class {other:?} (use gk, cb, uniform or large)"
            )))
        }
    };
    std::fs::write(&out_path, mkp::format::write_instance(&inst))
        .map_err(|e| CliError::Io(format!("{out_path}: {e}")))?;
    Ok(format!(
        "wrote {out_path}: {} [{}]",
        inst.name(),
        instance_stats(&inst)
    ))
}

/// `mkp stats`.
pub fn cmd_stats(args: &Args) -> Result<String, CliError> {
    if args.positional_count() > 1 {
        return Err(CliError::Invalid(
            "stats takes exactly one instance file".into(),
        ));
    }
    let inst = read_instance(args.positional(0, "instance.mkp")?)?;
    let s = instance_stats(&inst);
    let g = greedy(&inst, &Ratios::new(&inst));
    let mut out = String::new();
    let _ = writeln!(out, "instance   : {}", inst.name());
    let _ = writeln!(out, "items      : {}", s.n);
    let _ = writeln!(out, "constraints: {}", s.m);
    let _ = writeln!(out, "tightness  : {:.3}", s.mean_tightness);
    let _ = writeln!(out, "correlation: {:.3}", s.profit_weight_correlation);
    let _ = writeln!(out, "weight cv  : {:.3}", s.weight_cv);
    let _ = writeln!(out, "~cardinality: {:.0}", s.expected_cardinality);
    let _ = writeln!(out, "greedy value: {}", g.value());
    if let Ok(lp) = mkp_exact::bounds::lp_bound(&inst) {
        let _ = writeln!(out, "LP bound   : {:.1}", lp.objective);
    }
    if let Some(best) = inst.best_known() {
        let _ = writeln!(out, "best known : {best}");
    }
    Ok(out)
}

fn parse_mode(raw: &str) -> Result<Mode, CliError> {
    Ok(match raw {
        "seq" => Mode::Sequential,
        "its" => Mode::Independent,
        "cts1" => Mode::Cooperative,
        "cts2" => Mode::CooperativeAdaptive,
        "ats" => Mode::Asynchronous,
        "dts" => Mode::Decomposed,
        "core" | "repair" => {
            return Err(CliError::Invalid(format!(
                "{raw:?} is a search-space policy, not a paper mode; use --policy {raw}"
            )))
        }
        other => {
            return Err(CliError::Invalid(format!(
                "unknown mode {other:?} (use seq, its, cts1, cts2, ats or dts)"
            )))
        }
    })
}

/// Parse a `--policy` name (the promising-search-space policies layered on
/// top of the paper's modes).
fn parse_policy(raw: &str) -> Result<Mode, CliError> {
    Ok(match raw {
        "core" => Mode::Core,
        "repair" => Mode::Repair,
        other => {
            return Err(CliError::Invalid(format!(
                "unknown policy {other:?} (use core or repair)"
            )))
        }
    })
}

/// Resolve `--mode`/`--policy` into one [`Mode`]. The two flags select from
/// the same engine dispatch, so giving both is ambiguous and rejected.
fn resolve_mode(args: &Args) -> Result<Mode, CliError> {
    match (args.get_str("mode"), args.get_str("policy")) {
        (Some(mode), Some(policy)) => Err(CliError::Invalid(format!(
            "--mode {mode} and --policy {policy} both pick the search organization; \
             give exactly one"
        ))),
        (None, Some(policy)) => parse_policy(policy),
        (mode, None) => parse_mode(mode.unwrap_or("cts2")),
    }
}

/// Longest accepted `--fault` delay: a delay past the largest plausible
/// report deadline only wedges the test run it was meant to exercise.
const MAX_FAULT_DELAY_MS: u64 = 86_400_000; // 24 h

/// Parse a `--fault` spec. Workers are numbered from 1, matching the task
/// ids printed in loss reports; worker 0 is the master and cannot be a
/// fault target. `kill@K:R` kills worker K when it dequeues its round-R
/// assignment, `kill-repeat@K:R` additionally kills every resurrected
/// incarnation (restart-budget exhaustion drills), `delay@K:R:MS` turns
/// worker K into a straggler for MS milliseconds.
fn parse_fault(raw: &str) -> Result<FaultPlan, CliError> {
    let invalid = |what: &str| {
        CliError::Invalid(format!(
            "bad fault {raw:?}: {what} (use kill@K:R, kill-repeat@K:R or delay@K:R:MS, \
             workers numbered from 1)"
        ))
    };
    let (kind, spec) = raw
        .split_once('@')
        .ok_or_else(|| invalid("missing '@' between kind and position"))?;
    let fields: Vec<&str> = spec.split(':').collect();
    let num = |s: &str, what: &str| {
        s.parse::<u64>()
            .map_err(|_| invalid(&format!("{what} {s:?} is not a non-negative integer")))
    };
    let worker = |s: &str| -> Result<usize, CliError> {
        match num(s, "worker")? {
            0 => Err(invalid(
                "worker 0 targets the master; slaves are numbered from 1",
            )),
            k => Ok(k as usize - 1),
        }
    };
    let round = |s: &str| num(s, "round").map(|r| r as usize);
    match (kind, fields.as_slice()) {
        ("kill", [k, r]) => Ok(fault_at_round(worker(k)?, round(r)?, FaultAction::Kill)),
        ("kill-repeat", [k, r]) => Ok(fault_at_round(
            worker(k)?,
            round(r)?,
            FaultAction::KillRepeatedly,
        )),
        ("delay", [k, r, ms]) => {
            let (k, r) = (worker(k)?, round(r)?);
            let ms = num(ms, "delay")?;
            if ms == 0 {
                return Err(invalid(
                    "a zero delay never delays anything; drop the fault instead",
                ));
            }
            if ms > MAX_FAULT_DELAY_MS {
                return Err(invalid(&format!(
                    "delay of {ms} ms exceeds the 24-hour cap ({MAX_FAULT_DELAY_MS} ms)"
                )));
            }
            Ok(fault_at_round(
                k,
                r,
                FaultAction::Delay(Duration::from_millis(ms)),
            ))
        }
        ("kill" | "kill-repeat", f) => Err(invalid(&format!(
            "{kind} takes exactly K:R, got {} fields",
            f.len()
        ))),
        ("delay", f) => Err(invalid(&format!(
            "delay takes exactly K:R:MS, got {} fields",
            f.len()
        ))),
        (other, _) => Err(invalid(&format!("unknown fault kind {other:?}"))),
    }
}

/// `mkp solve`.
pub fn cmd_solve(args: &Args) -> Result<String, CliError> {
    let inst = read_instance(args.positional(0, "instance.mkp")?)?;
    let mode = resolve_mode(args)?;
    let p: usize = args.get("p", 4)?;
    let rounds: usize = args.get("rounds", 12)?;
    let budget: u64 = args.get("budget", 40_000 * inst.n() as u64)?;
    let seed: u64 = args.get("seed", 7)?;
    let relink: bool = args.get("relink", false)?;
    let timeout: u64 = args.get(
        "timeout",
        parallel_tabu::runner::DEFAULT_REPORT_TIMEOUT.as_secs(),
    )?;
    let fault = args.get_str("fault").map(parse_fault).transpose()?;
    let restarts: usize = args.get("restarts", 0)?;
    let backoff: u64 = args.get("backoff", 50)?;
    let patience: Option<u64> = args
        .get_str("patience")
        .map(|raw| {
            raw.parse().map_err(|_| {
                CliError::Invalid(format!("cannot parse value {raw:?} for --patience"))
            })
        })
        .transpose()?;
    let checkpoint_every: usize = args.get("checkpoint-every", 1)?;
    let checkpoint = args.get_str("checkpoint").map(|path| CheckpointCfg {
        path: path.into(),
        every: checkpoint_every,
    });
    if checkpoint.is_none() && args.get_str("checkpoint-every").is_some() {
        return Err(CliError::Invalid(
            "--checkpoint-every needs --checkpoint FILE".into(),
        ));
    }
    if p == 0 || rounds == 0 || budget == 0 || timeout == 0 {
        return Err(CliError::Invalid(
            "p, rounds, budget and timeout must be positive".into(),
        ));
    }
    let listen = args
        .get_str("listen")
        .map(Endpoint::parse)
        .transpose()
        .map_err(|e| CliError::Invalid(format!("--listen: {e}")))?;
    let net_fault = args
        .get_str("net-fault")
        .map(NetFaultPlan::parse)
        .transpose()
        .map_err(CliError::Invalid)?;
    if net_fault.is_some() && listen.is_none() {
        return Err(CliError::Invalid(
            "--net-fault injects faults into the socket transport and needs --listen; \
             for the in-process pool use --fault"
                .into(),
        ));
    }
    if listen.is_some() {
        // A distributed master farms work out to real processes; the
        // in-process-pool features make no sense over it and silently
        // ignoring them would mislead.
        if fault.is_some() {
            return Err(CliError::Invalid(
                "--fault injects faults into the in-process pool and cannot be combined \
                 with --listen; kill the slave process instead"
                    .into(),
            ));
        }
        if args.get_str("checkpoint").is_some() || args.get_str("resume").is_some() {
            return Err(CliError::Invalid(
                "--checkpoint/--resume are not yet supported with --listen".into(),
            ));
        }
    }

    let cfg = RunConfig {
        p,
        rounds,
        relink,
        report_timeout: Duration::from_secs(timeout),
        max_restarts: restarts,
        restart_backoff: Duration::from_millis(backoff),
        slave_patience: patience.map(Duration::from_secs),
        checkpoint,
        ..RunConfig::new(budget, seed)
    };
    cfg.validate().map_err(CliError::Invalid)?;
    let report = match &listen {
        Some(endpoint) => {
            let fault_state = net_fault.map(|plan| Arc::new(NetFaultState::new(plan)));
            run_remote_with(&inst, mode, &cfg, endpoint, fault_state)
        }
        None => {
            let mut engine = Engine::new(cfg.p);
            if let Some(plan) = fault {
                engine.inject_fault(plan);
            }
            match args.get_str("resume") {
                None => engine.run(&inst, mode, &cfg),
                Some(path) => {
                    // The snapshot, not --mode, decides the policy: resuming
                    // under a different mode could not reproduce the
                    // original run.
                    let snap = Snapshot::load(std::path::Path::new(path))
                        .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
                    engine.resume(&inst, snap, &cfg)
                }
            }
        }
    }
    .map_err(|e| CliError::Engine(e.to_string()))?;
    // Telemetry dumps happen before the degraded/clean split so a run that
    // lost workers still leaves its metrics behind for post-mortems.
    if let Some(path) = args.get_str("metrics") {
        std::fs::write(path, report.telemetry.to_metrics_json())
            .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    }
    if let Some(path) = args.get_str("trace") {
        std::fs::write(path, report.telemetry.to_trace_jsonl())
            .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    }
    let mut out = String::new();
    let _ = writeln!(out, "mode       : {}", report.mode.label());
    let _ = writeln!(out, "best value : {}", report.best.value());
    let _ = writeln!(out, "items      : {:?}", report.best.bits().ones());
    let _ = writeln!(
        out,
        "work       : {} moves / {} evals in {:?}",
        report.total_moves, report.total_evals, report.wall
    );
    if !report.resurrections.is_empty() {
        let revivals: Vec<String> = report.resurrections.iter().map(|r| r.to_string()).collect();
        let _ = writeln!(
            out,
            "resurrections: {} ({})",
            report.resurrections.len(),
            revivals.join("; ")
        );
    }
    if report.is_degraded() {
        let losses: Vec<String> = report.lost_workers.iter().map(|l| l.to_string()).collect();
        let _ = writeln!(
            out,
            "lost workers: {} ({})",
            report.lost_workers.len(),
            losses.join("; ")
        );
    }
    if let Ok(lp) = mkp_exact::bounds::lp_bound(&inst) {
        let gap = 100.0 * (lp.objective - report.best.value() as f64) / lp.objective;
        let _ = writeln!(out, "LP gap     : ≤ {gap:.3}%");
    }
    if let Some(best) = inst.best_known() {
        let _ = writeln!(
            out,
            "vs recorded: {} ({})",
            best,
            if report.best.value() >= best {
                "matched"
            } else {
                "below"
            }
        );
    }
    if report.is_degraded() {
        return Err(CliError::Degraded(out));
    }
    Ok(out)
}

/// Default `mkp slave --patience`, matching the engine's derived slave
/// patience for the default report timeout.
const DEFAULT_SLAVE_PATIENCE_SECS: u64 = 121;

/// `mkp slave`: serve one distributed run as a remote worker process.
pub fn cmd_slave(args: &Args) -> Result<String, CliError> {
    if args.positional_count() > 0 {
        return Err(CliError::Invalid(
            "slave takes no positional arguments; the master sends the instance over \
             the connection"
                .into(),
        ));
    }
    let raw = args.get_str("connect").ok_or_else(|| {
        CliError::Invalid("slave needs --connect unix:PATH or --connect tcp:HOST:PORT".into())
    })?;
    let endpoint =
        Endpoint::parse(raw).map_err(|e| CliError::Invalid(format!("--connect: {e}")))?;
    let patience: u64 = args.get("patience", DEFAULT_SLAVE_PATIENCE_SECS)?;
    if patience == 0 {
        return Err(CliError::Invalid(
            "--patience must be positive: a zero-patience slave gives up before the \
             master can say anything"
                .into(),
        ));
    }
    let fault = args
        .get_str("net-fault")
        .map(NetFaultPlan::parse)
        .transpose()
        .map_err(CliError::Invalid)?
        .map(|plan| Arc::new(NetFaultState::new(plan)));
    match serve_slave_with(&endpoint, Duration::from_secs(patience), fault)
        .map_err(CliError::Engine)?
    {
        ServeOutcome::Finished => Ok(format!("slave done: run at {endpoint} stopped cleanly")),
        ServeOutcome::MasterLost => Err(peer_lost("slave done", "master", &endpoint, patience)),
    }
}

/// The one degraded exit for a lost far end: `mkp slave` losing its
/// master and `mkp submit` losing its job server end the same way —
/// result unknown, work possibly still running — so both report through
/// this and exit with code 2.
fn peer_lost(task: &str, peer: &str, endpoint: &Endpoint, patience_secs: u64) -> CliError {
    CliError::Degraded(format!(
        "{task}: {peer} at {endpoint} went silent beyond {patience_secs} s"
    ))
}

/// Install a SIGTERM handler that flips a shared drain flag, and return
/// the flag. The job server polls it between slices: on SIGTERM it stops
/// admitting, parks every job (durably with `--state-dir`), compacts the
/// journal, and exits 0 — the graceful half of crash-safety, next to the
/// journal's kill-9 half. Raw `signal(2)` keeps the zero-dependency rule;
/// an atomic store is all the handler does, which is async-signal-safe.
#[cfg(unix)]
fn drain_on_sigterm() -> Arc<AtomicBool> {
    use std::sync::OnceLock;
    static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();
    extern "C" fn on_sigterm(_sig: i32) {
        if let Some(flag) = FLAG.get() {
            flag.store(true, Ordering::Relaxed);
        }
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM: i32 = 15;
    let flag = Arc::clone(FLAG.get_or_init(|| Arc::new(AtomicBool::new(false))));
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
    flag
}

/// Without signals there is no graceful drain; the journal still covers
/// hard kills.
#[cfg(not(unix))]
fn drain_on_sigterm() -> Arc<AtomicBool> {
    Arc::new(AtomicBool::new(false))
}

/// `mkp serve`.
pub fn cmd_serve(args: &Args) -> Result<String, CliError> {
    if args.positional_count() > 0 {
        return Err(CliError::Invalid(
            "serve takes no positional arguments; clients send instances over the \
             connection"
                .into(),
        ));
    }
    let clients = args.get_str("clients").ok_or_else(|| {
        CliError::Invalid("serve needs --clients unix:PATH or --clients tcp:HOST:PORT".into())
    })?;
    let clients =
        Endpoint::parse(clients).map_err(|e| CliError::Invalid(format!("--clients: {e}")))?;
    let p: usize = args.get("p", 4)?;
    let quantum: usize = args.get("quantum", 1)?;
    let max_queue: usize = args.get("max-queue", 16)?;
    let max_inflight: usize = args.get("max-inflight", 4)?;
    let max_jobs: u64 = args.get("max-jobs", 0)?;
    let patience: u64 = args.get("patience", DEFAULT_SLAVE_PATIENCE_SECS)?;
    let park_mem: usize = args.get("park-mem", 64 << 20)?;
    if p == 0 || quantum == 0 || max_queue == 0 || max_inflight == 0 || patience == 0 {
        return Err(CliError::Invalid(
            "p, quantum, max-queue, max-inflight and patience must be positive".into(),
        ));
    }
    let backend = match args.get_str("slaves") {
        Some(raw) => ServeBackend::Socket {
            slaves: Endpoint::parse(raw)
                .map_err(|e| CliError::Invalid(format!("--slaves: {e}")))?,
            p,
        },
        None => ServeBackend::InProc { p },
    };
    let mut cfg = ServeConfig {
        quantum,
        max_queue,
        max_inflight,
        park_mem_cap: park_mem,
        max_jobs,
        patience: Duration::from_secs(patience),
        ..ServeConfig::default()
    };
    if let Some(dir) = args.get_str("spool") {
        cfg.spool_dir = dir.into();
    }
    if let Some(dir) = args.get_str("state-dir") {
        cfg.state_dir = Some(dir.into());
    }
    cfg.drain = Some(drain_on_sigterm());
    let stats = serve(&clients, backend, &cfg).map_err(CliError::Engine)?;
    let mut out = String::new();
    let _ = writeln!(out, "server done: {} jobs accepted", stats.accepted);
    let _ = writeln!(
        out,
        "verdicts   : {} done / {} expired / {} failed / {} canceled / {} refused",
        stats.done, stats.expired, stats.failed, stats.canceled, stats.rejected
    );
    let _ = writeln!(
        out,
        "scheduling : {} slices, {} evictions, {} restores",
        stats.slices, stats.evictions, stats.restores
    );
    let _ = writeln!(
        out,
        "durability : {} recovered, {} spool corrupt{}",
        stats.recovered,
        stats.spool_corrupt,
        if stats.drained { ", drained" } else { "" }
    );
    Ok(out)
}

/// `mkp submit`.
pub fn cmd_submit(args: &Args) -> Result<String, CliError> {
    let inst = read_instance(args.positional(0, "instance.mkp")?)?;
    let raw = args.get_str("connect").ok_or_else(|| {
        CliError::Invalid("submit needs --connect unix:PATH or --connect tcp:HOST:PORT".into())
    })?;
    let endpoint =
        Endpoint::parse(raw).map_err(|e| CliError::Invalid(format!("--connect: {e}")))?;
    let mode = resolve_mode(args)?;
    let p: usize = args.get("p", 4)?;
    let rounds: usize = args.get("rounds", 12)?;
    let budget: u64 = args.get("budget", 40_000 * inst.n() as u64)?;
    let seed: u64 = args.get("seed", 7)?;
    let deadline_ms: u64 = args.get("deadline-ms", 0)?;
    let patience: u64 = args.get("patience", DEFAULT_SLAVE_PATIENCE_SECS)?;
    if p == 0 || rounds == 0 || budget == 0 || patience == 0 {
        return Err(CliError::Invalid(
            "p, rounds, budget and patience must be positive".into(),
        ));
    }
    let attach: u64 = args.get("attach", 0)?;
    if args.get_str("attach").is_some() && attach == 0 {
        return Err(CliError::Invalid(
            "--attach needs the job id a previous submit printed (ids start at 1)".into(),
        ));
    }
    let mut events = Vec::new();
    let outcome = if attach > 0 {
        // Reattach to a job this client (or a predecessor) already
        // submitted — after either side restarted. The search flags are
        // ignored: the server already has the job's configuration.
        attach_job(&endpoint, attach, Duration::from_secs(patience), |ev| {
            events.push(ev)
        })
    } else {
        let spec = SubmitSpec {
            mode,
            p,
            rounds,
            budget_evals: budget,
            seed,
            deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
        };
        submit_job(
            &endpoint,
            &inst,
            &spec,
            Duration::from_secs(patience),
            |ev| events.push(ev),
        )
    }
    .map_err(CliError::Engine)?;

    let mut out = String::new();
    for ev in &events {
        match ev {
            SubmitEvent::Accepted { job_id } => {
                let verb = if attach > 0 { "reattached" } else { "accepted" };
                let _ = writeln!(out, "job        : {job_id} {verb} at {endpoint}");
            }
            SubmitEvent::Incumbent { value, round, .. } => {
                let _ = writeln!(out, "incumbent  : {value} after round {round}");
            }
        }
    }
    match outcome {
        SubmitOutcome::Done(report) => {
            if report.best_bits.len() != inst.n() {
                return Err(CliError::Engine(format!(
                    "server answered for a {}-item instance, ours has {}",
                    report.best_bits.len(),
                    inst.n()
                )));
            }
            let best = report.best_solution(&inst);
            if !best.is_feasible(&inst) {
                return Err(CliError::Engine(
                    "server returned an infeasible assignment".into(),
                ));
            }
            let _ = writeln!(out, "mode       : {}", report.mode.label());
            let _ = writeln!(out, "best value : {}", best.value());
            let _ = writeln!(out, "items      : {:?}", best.bits().ones());
            let _ = writeln!(
                out,
                "work       : {} moves / {} evals in {} ms server-side{}",
                report.total_moves,
                report.total_evals,
                report.wall_ms,
                if report.degraded {
                    " (degraded: the server lost workers)"
                } else {
                    ""
                }
            );
            Ok(out)
        }
        SubmitOutcome::Rejected { reason } => Err(CliError::Engine(format!(
            "job rejected by the server at {endpoint}: {reason}"
        ))),
        SubmitOutcome::ServerLost => Err(peer_lost("job lost", "server", &endpoint, patience)),
    }
}

/// `mkp exact`.
pub fn cmd_exact(args: &Args) -> Result<String, CliError> {
    let inst = read_instance(args.positional(0, "instance.mkp")?)?;
    let nodes: u64 = args.get("nodes", 100_000_000)?;
    let workers: usize = args.get("workers", 1)?;
    if workers == 0 {
        return Err(CliError::Invalid("workers must be positive".into()));
    }
    let cfg = mkp_exact::BbConfig {
        node_limit: nodes,
        ..mkp_exact::BbConfig::default()
    };
    let start = std::time::Instant::now();
    let r = if workers == 1 {
        mkp_exact::solve(&inst, &cfg)
    } else {
        mkp_exact::solve_parallel(&inst, &cfg, workers)
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "optimum    : {}{}",
        r.solution.value(),
        if r.proven {
            ""
        } else {
            " (NOT PROVEN — node limit)"
        }
    );
    let _ = writeln!(out, "items      : {:?}", r.solution.bits().ones());
    let _ = writeln!(out, "nodes      : {}", r.nodes);
    let _ = writeln!(out, "root LP    : {:.1}", r.root_lp);
    let _ = writeln!(out, "time       : {:?}", start.elapsed());
    Ok(out)
}

/// `mkp validate-metrics`: schema-check a `--metrics` dump.
pub fn cmd_validate_metrics(args: &Args) -> Result<String, CliError> {
    let path = args.positional(0, "metrics.json")?;
    if args.positional_count() > 1 {
        return Err(CliError::Invalid(
            "validate-metrics takes exactly one metrics file".into(),
        ));
    }
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    let doc = parallel_tabu::validate_metrics_json(&text)
        .map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
    Ok(format!(
        "ok: {} tasks, schema {}",
        doc.workers.len(),
        doc.schema
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str], accepted: &[&'static str]) -> Args {
        Args::parse(parts.iter().map(|s| s.to_string()), accepted).unwrap()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("mkp_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    const GEN_FLAGS: &[&str] = &["class", "n", "m", "tightness", "correlation", "seed"];
    const SOLVE_FLAGS: &[&str] = &[
        "mode",
        "policy",
        "p",
        "rounds",
        "budget",
        "seed",
        "relink",
        "timeout",
        "patience",
        "fault",
        "restarts",
        "backoff",
        "checkpoint",
        "checkpoint-every",
        "resume",
        "metrics",
        "trace",
        "listen",
        "net-fault",
    ];
    const EXACT_FLAGS: &[&str] = &["nodes", "workers"];
    const SLAVE_FLAGS: &[&str] = &["connect", "patience", "net-fault"];
    const SERVE_FLAGS: &[&str] = &[
        "clients",
        "slaves",
        "p",
        "quantum",
        "max-queue",
        "max-inflight",
        "max-jobs",
        "park-mem",
        "spool",
        "state-dir",
        "patience",
    ];
    const SUBMIT_FLAGS: &[&str] = &[
        "connect",
        "mode",
        "policy",
        "p",
        "rounds",
        "budget",
        "seed",
        "deadline-ms",
        "attach",
        "patience",
    ];

    #[test]
    fn serve_then_submit_round_trip() {
        let path = tmp("jobsrv.mkp");
        cmd_generate(&args(
            &[&path, "--class", "uniform", "--n", "24", "--m", "3"],
            GEN_FLAGS,
        ))
        .unwrap();
        let sock = tmp("jobsrv.sock");
        let _ = std::fs::remove_file(&sock);
        let addr = format!("unix:{sock}");

        let server = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                cmd_serve(&args(
                    &["--clients", &addr, "--p", "2", "--max-jobs", "1"],
                    SERVE_FLAGS,
                ))
            })
        };
        let out = cmd_submit(&args(
            &[
                &path,
                "--connect",
                &addr,
                "--mode",
                "cts1",
                "--p",
                "2",
                "--rounds",
                "3",
                "--budget",
                "60000",
            ],
            SUBMIT_FLAGS,
        ))
        .unwrap();
        assert!(out.contains("accepted"));
        assert!(out.contains("incumbent  :"));
        assert!(out.contains("best value"));

        let served = server.join().unwrap().unwrap();
        assert!(served.contains("server done: 1 jobs accepted"));
        assert!(served.contains("1 done"));
    }

    #[test]
    fn serve_with_state_dir_retains_terminals_for_attach() {
        let path = tmp("attach_rt.mkp");
        cmd_generate(&args(
            &[&path, "--class", "uniform", "--n", "20", "--m", "2"],
            GEN_FLAGS,
        ))
        .unwrap();
        let sock = tmp("attach_rt.sock");
        let _ = std::fs::remove_file(&sock);
        let addr = format!("unix:{sock}");
        let state = tmp("attach_rt_state");
        let _ = std::fs::remove_dir_all(&state);

        // Two terminals stop the server: the first submit, and a second
        // submit fired after the attach has fetched the retained report.
        let server = {
            let (addr, state) = (addr.clone(), state.clone());
            std::thread::spawn(move || {
                cmd_serve(&args(
                    &[
                        "--clients",
                        &addr,
                        "--p",
                        "2",
                        "--max-jobs",
                        "2",
                        "--state-dir",
                        &state,
                    ],
                    SERVE_FLAGS,
                ))
            })
        };
        let submit_args: Vec<&str> = vec![
            &path,
            "--connect",
            &addr,
            "--mode",
            "cts1",
            "--p",
            "2",
            "--rounds",
            "2",
            "--budget",
            "40000",
        ];
        let first = cmd_submit(&args(&submit_args, SUBMIT_FLAGS)).unwrap();
        assert!(first.contains("job        : 1 accepted"));

        let attached = cmd_submit(&args(
            &[&path, "--connect", &addr, "--attach", "1"],
            SUBMIT_FLAGS,
        ))
        .unwrap();
        assert!(attached.contains("job        : 1 reattached"), "{attached}");
        let value = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("best value"))
                .map(str::to_string)
        };
        assert_eq!(value(&first), value(&attached), "{first}\n{attached}");

        cmd_submit(&args(&submit_args, SUBMIT_FLAGS)).unwrap();
        let served = server.join().unwrap().unwrap();
        assert!(served.contains("2 done"), "{served}");
        assert!(served.contains("durability : 0 recovered"), "{served}");
        assert!(
            std::path::Path::new(&state).join("journal.mkpj").exists(),
            "serving with --state-dir must leave a journal"
        );
    }

    #[test]
    fn attach_rejects_a_zero_or_malformed_job_id() {
        let path = tmp("attach_bad.mkp");
        cmd_generate(&args(&[&path, "--n", "10", "--m", "2"], GEN_FLAGS)).unwrap();
        let err = cmd_submit(&args(
            &[&path, "--connect", "unix:/tmp/x.sock", "--attach", "0"],
            SUBMIT_FLAGS,
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("ids start at 1"), "{err}");
        assert!(cmd_submit(&args(
            &[&path, "--connect", "unix:/tmp/x.sock", "--attach", "one"],
            SUBMIT_FLAGS,
        ))
        .is_err());
    }

    #[test]
    fn net_fault_requires_listen_and_a_wellformed_spec() {
        let path = tmp("netfault.mkp");
        cmd_generate(&args(&[&path, "--n", "10", "--m", "2"], GEN_FLAGS)).unwrap();
        let err = cmd_solve(&args(&[&path, "--net-fault", "corrupt@2"], SOLVE_FLAGS))
            .unwrap_err()
            .to_string();
        assert!(err.contains("needs --listen"), "{err}");
        let err = cmd_solve(&args(
            &[
                &path,
                "--listen",
                "unix:/tmp/x.sock",
                "--net-fault",
                "melt@1",
            ],
            SOLVE_FLAGS,
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("unknown net-fault kind"), "{err}");
        let err = cmd_slave(&args(
            &["--connect", "unix:/tmp/x.sock", "--net-fault", "drop@0"],
            SLAVE_FLAGS,
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("frame 0"), "{err}");
    }

    #[test]
    fn serve_and_submit_validate_their_arguments() {
        let err = cmd_serve(&args(&["--p", "2"], SERVE_FLAGS)).unwrap_err();
        assert!(err.to_string().contains("--clients"));

        let err = cmd_serve(&args(
            &["--clients", "unix:/tmp/x.sock", "--quantum", "0"],
            SERVE_FLAGS,
        ))
        .unwrap_err();
        assert!(err.to_string().contains("positive"));

        let path = tmp("submit_args.mkp");
        cmd_generate(&args(&[&path, "--n", "12", "--m", "2"], GEN_FLAGS)).unwrap();
        let err = cmd_submit(&args(&[&path], SUBMIT_FLAGS)).unwrap_err();
        assert!(err.to_string().contains("--connect"));

        let err = cmd_submit(&args(&[&path, "--connect", "nonsense"], SUBMIT_FLAGS)).unwrap_err();
        assert!(err.to_string().contains("--connect"));
    }

    #[test]
    fn generate_then_stats_then_solve_then_exact() {
        let path = tmp("pipeline.mkp");
        let msg = cmd_generate(&args(
            &[
                &path, "--class", "uniform", "--n", "24", "--m", "3", "--seed", "5",
            ],
            GEN_FLAGS,
        ))
        .unwrap();
        assert!(msg.contains("wrote"));

        let stats = cmd_stats(&args(&[&path], &[])).unwrap();
        assert!(stats.contains("items      : 24"));
        assert!(stats.contains("LP bound"));

        let solved = cmd_solve(&args(
            &[
                &path, "--mode", "cts2", "--budget", "200000", "--rounds", "4",
            ],
            SOLVE_FLAGS,
        ))
        .unwrap();
        assert!(solved.contains("mode       : CTS2"));
        assert!(solved.contains("best value"));

        let exact = cmd_exact(&args(&[&path, "--workers", "2"], EXACT_FLAGS)).unwrap();
        assert!(exact.contains("optimum"));
        assert!(!exact.contains("NOT PROVEN"));
    }

    #[test]
    fn generate_rejects_unknown_class() {
        let path = tmp("bad_class.mkp");
        let err = cmd_generate(&args(&[&path, "--class", "weird"], GEN_FLAGS)).unwrap_err();
        assert!(err.to_string().contains("unknown class"));
    }

    #[test]
    fn solve_rejects_unknown_mode() {
        let path = tmp("mode.mkp");
        cmd_generate(&args(&[&path, "--n", "10", "--m", "2"], GEN_FLAGS)).unwrap();
        let err = cmd_solve(&args(&[&path, "--mode", "bogus"], SOLVE_FLAGS)).unwrap_err();
        assert!(err.to_string().contains("unknown mode"));
    }

    #[test]
    fn policy_flag_selects_the_new_policies() {
        let path = tmp("policy.mkp");
        cmd_generate(&args(
            &[&path, "--n", "30", "--m", "3", "--class", "uniform"],
            GEN_FLAGS,
        ))
        .unwrap();
        for (policy, label) in [("core", "CORE"), ("repair", "REPAIR")] {
            let out = cmd_solve(&args(
                &[
                    &path, "--policy", policy, "--budget", "60000", "--rounds", "2", "--p", "2",
                ],
                SOLVE_FLAGS,
            ))
            .unwrap();
            assert!(
                out.contains(&format!("mode       : {label}")),
                "--policy {policy}: {out}"
            );
            assert!(out.contains("best value"), "--policy {policy}: {out}");
        }
    }

    #[test]
    fn solve_rejects_unknown_policy_with_a_specific_message() {
        let path = tmp("policy_bad.mkp");
        cmd_generate(&args(&[&path, "--n", "10", "--m", "2"], GEN_FLAGS)).unwrap();
        let err = cmd_solve(&args(&[&path, "--policy", "lp"], SOLVE_FLAGS))
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown policy \"lp\""), "{err}");
        assert!(err.contains("use core or repair"), "{err}");
    }

    #[test]
    fn policy_and_mode_are_mutually_exclusive() {
        let path = tmp("policy_combo.mkp");
        cmd_generate(&args(&[&path, "--n", "10", "--m", "2"], GEN_FLAGS)).unwrap();
        let err = cmd_solve(&args(
            &[&path, "--mode", "cts2", "--policy", "core"],
            SOLVE_FLAGS,
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("give exactly one"), "{err}");
        // A policy name passed through --mode points at the right flag.
        let err = cmd_solve(&args(&[&path, "--mode", "core"], SOLVE_FLAGS))
            .unwrap_err()
            .to_string();
        assert!(err.contains("use --policy core"), "{err}");
        // submit resolves modes identically (before touching the network).
        let err = cmd_submit(&args(
            &[
                &path,
                "--connect",
                "unix:/tmp/x.sock",
                "--mode",
                "its",
                "--policy",
                "repair",
            ],
            SUBMIT_FLAGS,
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("give exactly one"), "{err}");
    }

    #[test]
    fn generate_large_class_and_correlation_validation() {
        let path = tmp("large_gen.mkp");
        let msg = cmd_generate(&args(
            &[
                &path,
                "--class",
                "large",
                "--n",
                "400",
                "--m",
                "20",
                "--correlation",
                "0.7",
            ],
            GEN_FLAGS,
        ))
        .unwrap();
        assert!(msg.contains("wrote"), "{msg}");
        let stats = cmd_stats(&args(&[&path], &[])).unwrap();
        assert!(stats.contains("items      : 400"), "{stats}");

        let err = cmd_generate(&args(
            &[&path, "--class", "large", "--correlation", "1.5"],
            GEN_FLAGS,
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("outside [0, 1]"), "{err}");
        let err = cmd_generate(&args(
            &[&path, "--class", "gk", "--correlation", "0.5"],
            GEN_FLAGS,
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("only applies to --class large"), "{err}");
    }

    #[test]
    fn solve_rejects_zero_budget() {
        let path = tmp("zero.mkp");
        cmd_generate(&args(&[&path, "--n", "10", "--m", "2"], GEN_FLAGS)).unwrap();
        let err = cmd_solve(&args(&[&path, "--budget", "0"], SOLVE_FLAGS)).unwrap_err();
        assert!(err.to_string().contains("positive"));
    }

    #[test]
    fn solve_honors_timeout_flag() {
        let path = tmp("timeout.mkp");
        cmd_generate(&args(
            &[&path, "--n", "12", "--m", "2", "--class", "uniform"],
            GEN_FLAGS,
        ))
        .unwrap();
        let out = cmd_solve(&args(
            &[
                &path,
                "--timeout",
                "120",
                "--budget",
                "20000",
                "--rounds",
                "2",
            ],
            SOLVE_FLAGS,
        ))
        .unwrap();
        assert!(out.contains("best value"));
        let err = cmd_solve(&args(&[&path, "--timeout", "0"], SOLVE_FLAGS)).unwrap_err();
        assert!(err.to_string().contains("positive"));
    }

    #[test]
    fn fault_specs_parse() {
        // Workers are 1-based in specs, 0-based in fault_at_round.
        assert_eq!(
            parse_fault("kill@1:2").unwrap(),
            fault_at_round(0, 2, FaultAction::Kill)
        );
        assert_eq!(
            parse_fault("kill-repeat@3:0").unwrap(),
            fault_at_round(2, 0, FaultAction::KillRepeatedly)
        );
        assert_eq!(
            parse_fault("delay@1:3:250").unwrap(),
            fault_at_round(0, 3, FaultAction::Delay(Duration::from_millis(250)))
        );
        for bad in ["kill@1", "delay@1:2", "boom@1:2", "kill@a:b", "kill"] {
            assert!(parse_fault(bad).is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn fault_targeting_the_master_is_rejected() {
        for spec in ["kill@0:1", "kill-repeat@0:1", "delay@0:1:100"] {
            let err = parse_fault(spec).unwrap_err().to_string();
            assert!(err.contains("targets the master"), "{spec}: {err}");
        }
    }

    #[test]
    fn zero_delay_fault_is_rejected() {
        let err = parse_fault("delay@1:2:0").unwrap_err().to_string();
        assert!(err.contains("zero delay"), "{err}");
    }

    #[test]
    fn overlong_delay_fault_is_rejected() {
        // Just past the 24h cap, and a u64-overflowing literal.
        let err = parse_fault("delay@1:2:86400001").unwrap_err().to_string();
        assert!(err.contains("24-hour cap"), "{err}");
        let err = parse_fault("delay@1:2:99999999999999999999999")
            .unwrap_err()
            .to_string();
        assert!(err.contains("not a non-negative integer"), "{err}");
    }

    #[test]
    fn trailing_fault_fields_are_rejected() {
        let err = parse_fault("kill@1:2:3").unwrap_err().to_string();
        assert!(err.contains("exactly K:R"), "{err}");
        let err = parse_fault("delay@1:2:3:4").unwrap_err().to_string();
        assert!(err.contains("exactly K:R:MS"), "{err}");
        assert!(parse_fault("kill@1:2x").is_err(), "garbage round accepted");
    }

    #[test]
    fn degraded_solve_reports_losses_and_keeps_result() {
        let path = tmp("degraded.mkp");
        cmd_generate(&args(
            &[&path, "--n", "20", "--m", "2", "--class", "uniform"],
            GEN_FLAGS,
        ))
        .unwrap();
        let err = cmd_solve(&args(
            &[
                &path,
                "--mode",
                "cts2",
                "--p",
                "4",
                "--rounds",
                "3",
                "--budget",
                "60000",
                "--fault",
                "kill@1:1",
                "--timeout",
                "3",
            ],
            SOLVE_FLAGS,
        ))
        .unwrap_err();
        let CliError::Degraded(out) = err else {
            panic!("expected a degraded run, got {err:?}");
        };
        assert!(out.contains("best value"), "result lost: {out}");
        assert!(out.contains("lost workers: 1"), "losses missing: {out}");
        assert!(out.contains("worker 0 @ round 1"), "wrong loss: {out}");
    }

    #[test]
    fn restart_budget_heals_a_killed_worker() {
        let path = tmp("healed.mkp");
        cmd_generate(&args(
            &[&path, "--n", "20", "--m", "2", "--class", "uniform"],
            GEN_FLAGS,
        ))
        .unwrap();
        let out = cmd_solve(&args(
            &[
                &path,
                "--mode",
                "cts2",
                "--p",
                "4",
                "--rounds",
                "3",
                "--budget",
                "60000",
                "--fault",
                "kill@1:1",
                "--restarts",
                "2",
                "--backoff",
                "1",
                "--timeout",
                "5",
            ],
            SOLVE_FLAGS,
        ))
        .unwrap(); // Ok, not Degraded: the worker came back
        assert!(out.contains("resurrections: 1"), "no revival: {out}");
        assert!(
            out.contains("worker 0 @ round 1: revived on attempt 1"),
            "wrong revival: {out}"
        );
        assert!(!out.contains("lost workers"), "still degraded: {out}");
    }

    #[test]
    fn checkpointed_solve_resumes_to_the_same_result() {
        let path = tmp("resume.mkp");
        let snap = tmp("resume.snap");
        cmd_generate(&args(
            &[
                &path, "--n", "24", "--m", "3", "--class", "uniform", "--seed", "6",
            ],
            GEN_FLAGS,
        ))
        .unwrap();
        let solve_flags: Vec<&str> = vec![
            &path, "--mode", "cts2", "--p", "2", "--rounds", "4", "--budget", "80000",
        ];
        let full = cmd_solve(&args(&solve_flags, SOLVE_FLAGS)).unwrap();

        let mut with_cp = solve_flags.clone();
        with_cp.extend_from_slice(&["--checkpoint", &snap, "--checkpoint-every", "2"]);
        cmd_solve(&args(&with_cp, SOLVE_FLAGS)).unwrap();

        let mut resumed_args = solve_flags.clone();
        resumed_args.extend_from_slice(&["--resume", &snap]);
        let resumed = cmd_solve(&args(&resumed_args, SOLVE_FLAGS)).unwrap();
        let line = |s: &str, key: &str| {
            s.lines()
                .find(|l| l.starts_with(key))
                .map(str::to_string)
                .unwrap_or_default()
        };
        assert_eq!(
            line(&full, "best value"),
            line(&resumed, "best value"),
            "resume diverged\nfull:\n{full}\nresumed:\n{resumed}"
        );
        assert_eq!(line(&full, "items"), line(&resumed, "items"));
    }

    #[test]
    fn checkpoint_every_without_checkpoint_is_rejected() {
        let path = tmp("cp_orphan.mkp");
        cmd_generate(&args(&[&path, "--n", "10", "--m", "2"], GEN_FLAGS)).unwrap();
        let err = cmd_solve(&args(&[&path, "--checkpoint-every", "2"], SOLVE_FLAGS)).unwrap_err();
        assert!(err.to_string().contains("needs --checkpoint"), "{err}");
    }

    #[test]
    fn listen_rejects_malformed_addresses_with_specific_messages() {
        let path = tmp("listen_bad.mkp");
        cmd_generate(&args(&[&path, "--n", "10", "--m", "2"], GEN_FLAGS)).unwrap();
        for (addr, needle) in [
            ("localhost:9000", "malformed address"),
            ("unix:", "empty unix socket path"),
            ("tcp:localhost", "missing a port"),
            ("tcp:localhost:0", "port 0"),
            ("tcp::9000", "empty host"),
        ] {
            let err = cmd_solve(&args(&[&path, "--listen", addr], SOLVE_FLAGS))
                .unwrap_err()
                .to_string();
            assert!(err.contains(needle), "{addr}: {err}");
        }
    }

    #[test]
    fn listen_rejects_fault_injection_and_zero_workers() {
        let path = tmp("listen_combo.mkp");
        cmd_generate(&args(&[&path, "--n", "10", "--m", "2"], GEN_FLAGS)).unwrap();
        let err = cmd_solve(&args(
            &[&path, "--listen", "unix:/tmp/x.sock", "--fault", "kill@1:0"],
            SOLVE_FLAGS,
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("cannot be combined with --listen"), "{err}");
        let err = cmd_solve(&args(
            &[&path, "--listen", "unix:/tmp/x.sock", "--p", "0"],
            SOLVE_FLAGS,
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("positive"), "{err}");
    }

    #[test]
    fn listen_rejects_patience_below_the_report_deadline() {
        let path = tmp("listen_patience.mkp");
        cmd_generate(&args(&[&path, "--n", "10", "--m", "2"], GEN_FLAGS)).unwrap();
        let err = cmd_solve(&args(
            &[
                &path,
                "--listen",
                "unix:/tmp/x.sock",
                "--timeout",
                "10",
                "--patience",
                "2",
            ],
            SOLVE_FLAGS,
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("patience"), "{err}");
        assert!(err.contains("report timeout"), "{err}");
    }

    #[test]
    fn slave_validates_its_arguments() {
        let err = cmd_slave(&args(&[], SLAVE_FLAGS)).unwrap_err().to_string();
        assert!(err.contains("needs --connect"), "{err}");
        let err = cmd_slave(&args(&["--connect", "nonsense"], SLAVE_FLAGS))
            .unwrap_err()
            .to_string();
        assert!(err.contains("malformed address"), "{err}");
        let err = cmd_slave(&args(
            &["--connect", "unix:/tmp/x.sock", "--patience", "0"],
            SLAVE_FLAGS,
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("must be positive"), "{err}");
        let err = cmd_slave(&args(
            &["stray.mkp", "--connect", "unix:/tmp/x.sock"],
            SLAVE_FLAGS,
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("no positional"), "{err}");
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = cmd_stats(&args(&["/nonexistent/nowhere.mkp"], &[])).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }

    #[test]
    fn all_modes_accepted_by_solver() {
        let path = tmp("modes.mkp");
        cmd_generate(&args(
            &[&path, "--n", "20", "--m", "2", "--class", "uniform"],
            GEN_FLAGS,
        ))
        .unwrap();
        for mode in ["seq", "its", "cts1", "cts2", "ats", "dts"] {
            let out = cmd_solve(&args(
                &[
                    &path, "--mode", mode, "--budget", "50000", "--rounds", "2", "--p", "2",
                ],
                SOLVE_FLAGS,
            ))
            .unwrap();
            assert!(out.contains("best value"), "mode {mode} failed");
        }
    }

    #[test]
    fn solve_writes_identical_metrics_across_repeats_and_they_validate() {
        let path = tmp("metrics.mkp");
        cmd_generate(&args(
            &[&path, "--n", "20", "--m", "2", "--class", "uniform"],
            GEN_FLAGS,
        ))
        .unwrap();
        let metrics = tmp("metrics.json");
        let trace = tmp("trace.jsonl");
        let solve_args = [
            path.as_str(),
            "--mode",
            "cts1",
            "--budget",
            "50000",
            "--rounds",
            "2",
            "--p",
            "2",
            "--metrics",
            &metrics,
            "--trace",
            &trace,
        ];
        cmd_solve(&args(&solve_args, SOLVE_FLAGS)).unwrap();
        let first = std::fs::read(&metrics).unwrap();
        assert!(!std::fs::read_to_string(&trace).unwrap().is_empty());
        let ok = cmd_validate_metrics(&args(&[&metrics], &[])).unwrap();
        assert!(ok.contains("ok: 3 tasks"), "{ok}");

        cmd_solve(&args(&solve_args, SOLVE_FLAGS)).unwrap();
        let second = std::fs::read(&metrics).unwrap();
        assert_eq!(first, second, "metrics JSON must be byte-identical");
    }

    #[test]
    fn validate_metrics_rejects_malformed_files() {
        let path = tmp("bad-metrics.json");
        std::fs::write(&path, "{\"schema\": \"wrong/v9\"}").unwrap();
        let err = cmd_validate_metrics(&args(&[&path], &[])).unwrap_err();
        assert!(matches!(err, CliError::Invalid(_)), "{err}");
    }
}
