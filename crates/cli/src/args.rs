//! Minimal argument parsing: `--key value` flags and positionals, no
//! external dependency. Each subcommand declares the flags it understands;
//! unknown flags are reported with the valid set.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed invocation: positionals in order, flags by name.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positionals: Vec<String>,
    flags: BTreeMap<String, String>,
}

/// Argument errors carry enough context for a one-line message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` appeared without a value.
    MissingValue(String),
    /// A flag not in the accepted set.
    UnknownFlag {
        /// The offending flag.
        flag: String,
        /// Accepted flags for the subcommand.
        accepted: Vec<&'static str>,
    },
    /// A flag value failed to parse.
    BadValue {
        /// Flag name.
        flag: String,
        /// Offending value.
        value: String,
    },
    /// A required positional is missing.
    MissingPositional(&'static str),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            ArgError::UnknownFlag { flag, accepted } => {
                write!(f, "unknown flag --{flag}; accepted: ")?;
                for (i, a) in accepted.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "--{a}")?;
                }
                Ok(())
            }
            ArgError::BadValue { flag, value } => {
                write!(f, "cannot parse value {value:?} for --{flag}")
            }
            ArgError::MissingPositional(name) => write!(f, "missing <{name}>"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse raw arguments against the accepted flag set.
    pub fn parse<I: IntoIterator<Item = String>>(
        raw: I,
        accepted: &[&'static str],
    ) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut iter = raw.into_iter();
        while let Some(token) = iter.next() {
            if let Some(name) = token.strip_prefix("--") {
                if !accepted.contains(&name) {
                    return Err(ArgError::UnknownFlag {
                        flag: name.to_string(),
                        accepted: accepted.to_vec(),
                    });
                }
                let value = iter
                    .next()
                    .ok_or_else(|| ArgError::MissingValue(name.to_string()))?;
                out.flags.insert(name.to_string(), value);
            } else {
                out.positionals.push(token);
            }
        }
        Ok(out)
    }

    /// Positional at index, or an error naming it.
    pub fn positional(&self, index: usize, name: &'static str) -> Result<&str, ArgError> {
        self.positionals
            .get(index)
            .map(String::as_str)
            .ok_or(ArgError::MissingPositional(name))
    }

    /// Number of positionals.
    pub fn positional_count(&self) -> usize {
        self.positionals.len()
    }

    /// Typed flag lookup with a default.
    pub fn get<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: raw.clone(),
            }),
        }
    }

    /// Raw flag value, if present.
    pub fn get_str(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_positionals_and_flags() {
        let a = Args::parse(
            raw(&["file.mkp", "--seed", "7", "--p", "4"]),
            &["seed", "p"],
        )
        .unwrap();
        assert_eq!(a.positional_count(), 1);
        assert_eq!(a.positional(0, "file").unwrap(), "file.mkp");
        assert_eq!(a.get::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(a.get::<usize>("p", 1).unwrap(), 4);
    }

    #[test]
    fn defaults_apply_when_flag_absent() {
        let a = Args::parse(raw(&[]), &["seed"]).unwrap();
        assert_eq!(a.get::<u64>("seed", 42).unwrap(), 42);
        assert!(a.get_str("seed").is_none());
    }

    #[test]
    fn unknown_flag_lists_accepted() {
        let err = Args::parse(raw(&["--bogus", "1"]), &["seed", "p"]).unwrap_err();
        match err {
            ArgError::UnknownFlag { flag, accepted } => {
                assert_eq!(flag, "bogus");
                assert_eq!(accepted, vec!["seed", "p"]);
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn missing_value_detected() {
        let err = Args::parse(raw(&["--seed"]), &["seed"]).unwrap_err();
        assert_eq!(err, ArgError::MissingValue("seed".into()));
    }

    #[test]
    fn bad_value_detected() {
        let a = Args::parse(raw(&["--seed", "abc"]), &["seed"]).unwrap();
        assert!(matches!(
            a.get::<u64>("seed", 0),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn missing_positional_named() {
        let a = Args::parse(raw(&[]), &[]).unwrap();
        assert_eq!(
            a.positional(0, "instance"),
            Err(ArgError::MissingPositional("instance"))
        );
    }

    #[test]
    fn error_messages_read_well() {
        let e = ArgError::UnknownFlag {
            flag: "x".into(),
            accepted: vec!["a", "b"],
        };
        assert_eq!(e.to_string(), "unknown flag --x; accepted: --a, --b");
    }
}
