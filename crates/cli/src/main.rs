//! `mkp` — command-line interface to the workspace.
//!
//! ```sh
//! mkp generate /tmp/a.mkp --class gk --n 100 --m 5
//! mkp stats    /tmp/a.mkp
//! mkp solve    /tmp/a.mkp --mode cts2 --p 4
//! mkp exact    /tmp/a.mkp --workers 4
//! ```

mod args;
mod commands;

use args::Args;
use commands::{
    cmd_exact, cmd_generate, cmd_serve, cmd_slave, cmd_solve, cmd_stats, cmd_submit,
    cmd_validate_metrics, USAGE,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1);
    let Some(command) = raw.next() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest: Vec<String> = raw.collect();

    let outcome = match command.as_str() {
        "generate" => Args::parse(
            rest,
            &["class", "n", "m", "tightness", "correlation", "seed"],
        )
        .map_err(Into::into)
        .and_then(|a| cmd_generate(&a)),
        "stats" => Args::parse(rest, &[])
            .map_err(Into::into)
            .and_then(|a| cmd_stats(&a)),
        "solve" => Args::parse(
            rest,
            &[
                "mode",
                "policy",
                "p",
                "rounds",
                "budget",
                "seed",
                "relink",
                "timeout",
                "patience",
                "fault",
                "restarts",
                "backoff",
                "checkpoint",
                "checkpoint-every",
                "resume",
                "metrics",
                "trace",
                "listen",
                "net-fault",
            ],
        )
        .map_err(Into::into)
        .and_then(|a| cmd_solve(&a)),
        "slave" => Args::parse(rest, &["connect", "patience", "net-fault"])
            .map_err(Into::into)
            .and_then(|a| cmd_slave(&a)),
        "serve" => Args::parse(
            rest,
            &[
                "clients",
                "slaves",
                "p",
                "quantum",
                "max-queue",
                "max-inflight",
                "max-jobs",
                "park-mem",
                "spool",
                "state-dir",
                "patience",
            ],
        )
        .map_err(Into::into)
        .and_then(|a| cmd_serve(&a)),
        "submit" => Args::parse(
            rest,
            &[
                "connect",
                "mode",
                "policy",
                "p",
                "rounds",
                "budget",
                "seed",
                "deadline-ms",
                "attach",
                "patience",
            ],
        )
        .map_err(Into::into)
        .and_then(|a| cmd_submit(&a)),
        "exact" => Args::parse(rest, &["nodes", "workers"])
            .map_err(Into::into)
            .and_then(|a| cmd_exact(&a)),
        "validate-metrics" => Args::parse(rest, &[])
            .map_err(Into::into)
            .and_then(|a| cmd_validate_metrics(&a)),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown command {other:?}\n");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    match outcome {
        Ok(text) => {
            print!("{text}");
            if !text.ends_with('\n') {
                println!();
            }
            ExitCode::SUCCESS
        }
        // A degraded solve still produced a result: print it like a
        // success, but exit 2 so scripts can tell the difference.
        Err(commands::CliError::Degraded(text)) => {
            print!("{text}");
            if !text.ends_with('\n') {
                println!();
            }
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
