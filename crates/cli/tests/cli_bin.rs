//! End-to-end tests of the compiled `mkp` binary.

use std::process::Command;

fn mkp(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_mkp"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("mkp_bin_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = mkp(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("mkp solve"));
}

#[test]
fn no_arguments_fails_with_usage() {
    let (ok, _, stderr) = mkp(&[]);
    assert!(!ok);
    assert!(stderr.contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let (ok, _, stderr) = mkp(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn full_generate_solve_exact_pipeline() {
    let path = tmp("bin_pipeline.mkp");
    let (ok, stdout, stderr) = mkp(&[
        "generate", &path, "--class", "uniform", "--n", "22", "--m", "3", "--seed", "4",
    ]);
    assert!(ok, "generate failed: {stderr}");
    assert!(stdout.contains("wrote"));

    let (ok, stdout, _) = mkp(&["stats", &path]);
    assert!(ok);
    assert!(stdout.contains("items      : 22"));

    let (ok, solve_out, _) = mkp(&[
        "solve", &path, "--mode", "cts2", "--budget", "150000", "--rounds", "3", "--p", "2",
    ]);
    assert!(ok);
    assert!(solve_out.contains("best value :"));

    let (ok, exact_out, _) = mkp(&["exact", &path, "--workers", "2"]);
    assert!(ok);
    assert!(exact_out.contains("optimum"));
    assert!(!exact_out.contains("NOT PROVEN"));

    // The heuristic value printed must not exceed the certified optimum.
    let grab = |text: &str, key: &str| -> i64 {
        text.lines()
            .find(|l| l.starts_with(key))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|v| v.trim().split(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing {key} in output"))
    };
    assert!(grab(&solve_out, "best value") <= grab(&exact_out, "optimum"));
}

#[test]
fn bad_flag_reports_accepted_set() {
    let (ok, _, stderr) = mkp(&["solve", "nowhere.mkp", "--warp", "9"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag --warp"));
    assert!(stderr.contains("--mode"));
}

#[test]
fn missing_file_reports_io_error() {
    let (ok, _, stderr) = mkp(&["solve", "/definitely/not/here.mkp"]);
    assert!(!ok);
    assert!(stderr.contains("io error"));
}
