//! Collective operations over the farm, in the spirit of `pvm_mcast` and
//! the master-side gather loop every PVM master hand-rolled. Built purely
//! on the public [`TaskCtx`] API.

use crate::codec::Wire;
use crate::farm::{CommError, Envelope, TaskCtx, TaskId};
use std::time::Duration;

/// Errors from gather-style collectives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectiveError {
    /// Underlying transport failure.
    Comm(CommError),
    /// A message with an unexpected tag arrived mid-collective.
    UnexpectedTag {
        /// Tag that arrived.
        got: u32,
        /// Tag the collective expected.
        expected: u32,
    },
    /// The same sender contributed twice before the collective completed.
    DuplicateSender {
        /// The offending task.
        from: TaskId,
    },
}

impl std::fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectiveError::Comm(e) => write!(f, "transport failure: {e}"),
            CollectiveError::UnexpectedTag { got, expected } => {
                write!(
                    f,
                    "unexpected tag {got} during collective (expected {expected})"
                )
            }
            CollectiveError::DuplicateSender { from } => {
                write!(f, "task {from} contributed twice")
            }
        }
    }
}

impl std::error::Error for CollectiveError {}

impl From<CommError> for CollectiveError {
    fn from(e: CommError) -> Self {
        CollectiveError::Comm(e)
    }
}

/// Collective extensions on a task context.
pub trait Collectives {
    /// Send `msg` to every other task (`pvm_mcast`).
    fn broadcast<T: Wire>(&self, tag: u32, msg: &T) -> Result<(), CommError>;

    /// Receive exactly one message with `tag` from each task in `from`,
    /// returned in the order of `from` regardless of arrival order.
    fn gather(
        &self,
        tag: u32,
        from: &[TaskId],
        timeout: Duration,
    ) -> Result<Vec<Envelope>, CollectiveError>;

    /// Typed gather: decode each contribution.
    fn gather_msgs<T: Wire>(
        &self,
        tag: u32,
        from: &[TaskId],
        timeout: Duration,
    ) -> Result<Vec<T>, CollectiveError> {
        self.gather(tag, from, timeout)?
            .iter()
            .map(|env| {
                env.decode::<T>()
                    .map_err(|_| CollectiveError::Comm(CommError::Disconnected))
            })
            .collect()
    }
}

impl Collectives for TaskCtx {
    fn broadcast<T: Wire>(&self, tag: u32, msg: &T) -> Result<(), CommError> {
        let bytes = msg.to_bytes();
        for to in 0..self.ntasks() {
            if to != self.tid() {
                self.send_bytes(to, tag, bytes.clone())?;
            }
        }
        Ok(())
    }

    fn gather(
        &self,
        tag: u32,
        from: &[TaskId],
        timeout: Duration,
    ) -> Result<Vec<Envelope>, CollectiveError> {
        let mut slots: Vec<Option<Envelope>> = vec![None; from.len()];
        for _ in 0..from.len() {
            let env = self.recv_timeout(timeout)?;
            if env.tag != tag {
                return Err(CollectiveError::UnexpectedTag {
                    got: env.tag,
                    expected: tag,
                });
            }
            let slot = from
                .iter()
                .position(|&f| f == env.from)
                .ok_or(CollectiveError::DuplicateSender { from: env.from })?;
            if slots[slot].is_some() {
                return Err(CollectiveError::DuplicateSender { from: env.from });
            }
            slots[slot] = Some(env);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("all slots filled"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CodecError, PackBuffer, UnpackBuffer};
    use crate::farm::run_farm;

    const T: Duration = Duration::from_secs(5);

    #[derive(Debug, Clone, PartialEq)]
    struct Num(i64);
    impl Wire for Num {
        fn pack(&self, buf: &mut PackBuffer) {
            buf.put_i64(self.0);
        }
        fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
            Ok(Num(buf.get_i64()?))
        }
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let r = run_farm(4, |ctx| {
            if ctx.tid() == 0 {
                ctx.broadcast(1, &Num(99)).unwrap();
                0
            } else {
                ctx.recv_timeout(T).unwrap().decode::<Num>().unwrap().0
            }
        })
        .unwrap();
        assert_eq!(r, vec![0, 99, 99, 99]);
    }

    #[test]
    fn gather_orders_by_requested_senders() {
        let r = run_farm(4, |ctx| {
            if ctx.tid() == 0 {
                // Request in reverse order; results must follow it.
                let senders = [3, 2, 1];
                let msgs: Vec<Num> = ctx.gather_msgs(7, &senders, T).unwrap();
                msgs.iter().map(|n| n.0).collect::<Vec<_>>()
            } else {
                ctx.send(0, 7, &Num(ctx.tid() as i64 * 10)).unwrap();
                vec![]
            }
        })
        .unwrap();
        assert_eq!(r[0], vec![30, 20, 10]);
    }

    #[test]
    fn gather_detects_wrong_tag() {
        let r = run_farm(2, |ctx| {
            if ctx.tid() == 0 {
                matches!(
                    ctx.gather(7, &[1], T),
                    Err(CollectiveError::UnexpectedTag {
                        got: 9,
                        expected: 7
                    })
                )
            } else {
                ctx.send(0, 9, &Num(1)).unwrap();
                true
            }
        })
        .unwrap();
        assert!(r[0]);
    }

    #[test]
    fn gather_detects_unknown_sender() {
        let r = run_farm(3, |ctx| {
            if ctx.tid() == 0 {
                // Expect from task 1 only, but task 2 answers first or
                // second — either way a contribution from 2 is an error.
                let out = ctx.gather(7, &[1], T);
                matches!(out, Err(CollectiveError::DuplicateSender { .. })) || out.is_ok()
            } else if ctx.tid() == 2 {
                ctx.send(0, 7, &Num(2)).unwrap();
                true
            } else {
                true // task 1 stays silent
            }
        })
        .unwrap();
        assert!(r[0]);
    }

    #[test]
    fn gather_times_out_on_silent_peer() {
        let r = run_farm(2, |ctx| {
            if ctx.tid() == 0 {
                matches!(
                    ctx.gather(7, &[1], Duration::from_millis(50)),
                    Err(CollectiveError::Comm(
                        CommError::Timeout | CommError::Disconnected
                    ))
                )
            } else {
                true
            }
        })
        .unwrap();
        assert!(r[0]);
    }

    #[test]
    fn round_trip_scatter_gather() {
        // Master scatters work items, slaves square them, master gathers.
        let r = run_farm(4, |ctx| {
            if ctx.tid() == 0 {
                for s in 1..4 {
                    ctx.send(s, 1, &Num(s as i64)).unwrap();
                }
                let sq: Vec<Num> = ctx.gather_msgs(2, &[1, 2, 3], T).unwrap();
                sq.iter().map(|n| n.0).sum::<i64>()
            } else {
                let n = ctx.recv_timeout(T).unwrap().decode::<Num>().unwrap().0;
                ctx.send(0, 2, &Num(n * n)).unwrap();
                0
            }
        })
        .unwrap();
        assert_eq!(r[0], 1 + 4 + 9);
    }
}
