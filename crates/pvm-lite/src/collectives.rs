//! Collective operations over the farm, in the spirit of `pvm_mcast` and
//! the master-side gather loop every PVM master hand-rolled. Built purely
//! on the [`Transport`] surface, so every backend — in-process mailboxes
//! and sockets alike — gets them via the blanket impl.

use crate::codec::Wire;
use crate::farm::{CommError, Envelope, TaskId};
use crate::transport::Transport;
use std::time::{Duration, Instant};

/// Errors from gather-style collectives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectiveError {
    /// Underlying transport failure.
    Comm(CommError),
    /// A message with an unexpected tag arrived mid-collective.
    UnexpectedTag {
        /// Tag that arrived.
        got: u32,
        /// Tag the collective expected.
        expected: u32,
    },
    /// The same sender contributed twice before the collective completed.
    DuplicateSender {
        /// The offending task.
        from: TaskId,
    },
    /// A contribution arrived from a task the collective did not expect
    /// (and was not told to ignore).
    UnknownSender {
        /// The offending task.
        from: TaskId,
    },
}

impl std::fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectiveError::Comm(e) => write!(f, "transport failure: {e}"),
            CollectiveError::UnexpectedTag { got, expected } => {
                write!(
                    f,
                    "unexpected tag {got} during collective (expected {expected})"
                )
            }
            CollectiveError::DuplicateSender { from } => {
                write!(f, "task {from} contributed twice")
            }
            CollectiveError::UnknownSender { from } => {
                write!(f, "unexpected contribution from task {from}")
            }
        }
    }
}

impl std::error::Error for CollectiveError {}

impl From<CommError> for CollectiveError {
    fn from(e: CommError) -> Self {
        CollectiveError::Comm(e)
    }
}

/// Outcome of a [`gather_partial`](Collectives::gather_partial): whichever
/// contributions arrived before the deadline, plus the tasks that missed it.
#[derive(Debug, Clone)]
pub struct PartialGather {
    /// One slot per requested sender, in request order; `None` for a
    /// sender whose contribution never arrived.
    pub slots: Vec<Option<Envelope>>,
    /// Requested senders whose slots are empty, in request order.
    pub missing: Vec<TaskId>,
    /// Messages dropped because their sender was quarantined (listed in
    /// `ignore`). Previously these vanished silently; exposing the count
    /// lets callers keep a truthful `stale_ignored` telemetry counter.
    pub ignored: usize,
}

/// Collective extensions on a task context.
pub trait Collectives {
    /// Send `msg` to every other task (`pvm_mcast`).
    fn broadcast<T: Wire>(&self, tag: u32, msg: &T) -> Result<(), CommError>;

    /// Receive exactly one message with `tag` from each task in `from`,
    /// returned in the order of `from` regardless of arrival order.
    fn gather(
        &self,
        tag: u32,
        from: &[TaskId],
        timeout: Duration,
    ) -> Result<Vec<Envelope>, CollectiveError>;

    /// Gather that tolerates absent peers: collect one `tag` message from
    /// each task in `from` until all arrive or `timeout` elapses — the
    /// deadline covers the whole gather, not each message — and report
    /// whatever arrived. Messages from tasks in `ignore` are dropped
    /// silently (stale contributions from quarantined peers); a message
    /// from any other unexpected task is an [`UnknownSender`] error, a
    /// wrong tag or duplicate is still an error.
    ///
    /// Quarantine is per-call, not per-farm: a sender ignored in one
    /// gather is re-admitted simply by listing it in `from` again later,
    /// which is how a resurrected worker rejoins after a respawn. Note
    /// that slot identity is the task id only — this collective cannot
    /// tell a reborn incarnation from a leftover message of the dead one.
    /// Callers that respawn mid-run (the engine's supervised round loop)
    /// must tag payloads with an epoch and filter themselves rather than
    /// rely on `ignore`.
    ///
    /// [`UnknownSender`]: CollectiveError::UnknownSender
    fn gather_partial(
        &self,
        tag: u32,
        from: &[TaskId],
        ignore: &[TaskId],
        timeout: Duration,
    ) -> Result<PartialGather, CollectiveError>;

    /// Typed gather: decode each contribution.
    fn gather_msgs<T: Wire>(
        &self,
        tag: u32,
        from: &[TaskId],
        timeout: Duration,
    ) -> Result<Vec<T>, CollectiveError> {
        self.gather(tag, from, timeout)?
            .iter()
            .map(|env| {
                env.decode::<T>()
                    .map_err(|_| CollectiveError::Comm(CommError::Disconnected))
            })
            .collect()
    }
}

impl<C: Transport> Collectives for C {
    fn broadcast<T: Wire>(&self, tag: u32, msg: &T) -> Result<(), CommError> {
        let bytes = msg.to_bytes();
        for to in 0..self.ntasks() {
            if to != self.tid() {
                self.send_bytes(to, tag, bytes.clone())?;
            }
        }
        Ok(())
    }

    fn gather(
        &self,
        tag: u32,
        from: &[TaskId],
        timeout: Duration,
    ) -> Result<Vec<Envelope>, CollectiveError> {
        let partial = self.gather_partial(tag, from, &[], timeout)?;
        if !partial.missing.is_empty() {
            return Err(CollectiveError::Comm(CommError::Timeout));
        }
        Ok(partial
            .slots
            .into_iter()
            .map(|s| s.expect("no slot missing"))
            .collect())
    }

    fn gather_partial(
        &self,
        tag: u32,
        from: &[TaskId],
        ignore: &[TaskId],
        timeout: Duration,
    ) -> Result<PartialGather, CollectiveError> {
        // One deadline for the whole collective: slow peers don't get a
        // fresh timeout per message. `checked_add` overflow (a huge
        // timeout) means "no deadline".
        let deadline = Instant::now().checked_add(timeout);
        let mut slots: Vec<Option<Envelope>> = vec![None; from.len()];
        let mut filled = 0usize;
        let mut ignored = 0usize;
        while filled < from.len() {
            let remaining = match deadline {
                None => Duration::MAX,
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    deadline - now
                }
            };
            let env = match self.recv_timeout(remaining) {
                Ok(env) => env,
                Err(CommError::Timeout) | Err(CommError::Disconnected) => break,
                Err(e) => return Err(CollectiveError::Comm(e)),
            };
            if ignore.contains(&env.from) {
                ignored += 1; // stale contribution from a quarantined peer
                continue;
            }
            if env.tag != tag {
                return Err(CollectiveError::UnexpectedTag {
                    got: env.tag,
                    expected: tag,
                });
            }
            let Some(slot) = from.iter().position(|&f| f == env.from) else {
                return Err(CollectiveError::UnknownSender { from: env.from });
            };
            if slots[slot].is_some() {
                return Err(CollectiveError::DuplicateSender { from: env.from });
            }
            slots[slot] = Some(env);
            filled += 1;
        }
        let missing = from
            .iter()
            .zip(&slots)
            .filter(|(_, slot)| slot.is_none())
            .map(|(&tid, _)| tid)
            .collect();
        Ok(PartialGather {
            slots,
            missing,
            ignored,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CodecError, PackBuffer, UnpackBuffer};
    use crate::farm::run_farm;

    const T: Duration = Duration::from_secs(5);

    #[derive(Debug, Clone, PartialEq)]
    struct Num(i64);
    impl Wire for Num {
        fn pack(&self, buf: &mut PackBuffer) {
            buf.put_i64(self.0);
        }
        fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
            Ok(Num(buf.get_i64()?))
        }
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let r = run_farm(4, |ctx| {
            if ctx.tid() == 0 {
                ctx.broadcast(1, &Num(99)).unwrap();
                0
            } else {
                ctx.recv_timeout(T).unwrap().decode::<Num>().unwrap().0
            }
        })
        .unwrap();
        assert_eq!(r, vec![0, 99, 99, 99]);
    }

    #[test]
    fn gather_orders_by_requested_senders() {
        let r = run_farm(4, |ctx| {
            if ctx.tid() == 0 {
                // Request in reverse order; results must follow it.
                let senders = [3, 2, 1];
                let msgs: Vec<Num> = ctx.gather_msgs(7, &senders, T).unwrap();
                msgs.iter().map(|n| n.0).collect::<Vec<_>>()
            } else {
                ctx.send(0, 7, &Num(ctx.tid() as i64 * 10)).unwrap();
                vec![]
            }
        })
        .unwrap();
        assert_eq!(r[0], vec![30, 20, 10]);
    }

    #[test]
    fn gather_detects_wrong_tag() {
        let r = run_farm(2, |ctx| {
            if ctx.tid() == 0 {
                matches!(
                    ctx.gather(7, &[1], T),
                    Err(CollectiveError::UnexpectedTag {
                        got: 9,
                        expected: 7
                    })
                )
            } else {
                ctx.send(0, 9, &Num(1)).unwrap();
                true
            }
        })
        .unwrap();
        assert!(r[0]);
    }

    #[test]
    fn gather_detects_unknown_sender() {
        let r = run_farm(3, |ctx| {
            if ctx.tid() == 0 {
                // Expect from task 1 only, but task 2 answers first or
                // second — either way a contribution from 2 is an error.
                let out = ctx.gather(7, &[1], T);
                matches!(out, Err(CollectiveError::UnknownSender { from: 2 })) || out.is_ok()
            } else if ctx.tid() == 2 {
                ctx.send(0, 7, &Num(2)).unwrap();
                true
            } else {
                true // task 1 stays silent
            }
        })
        .unwrap();
        assert!(r[0]);
    }

    #[test]
    fn gather_times_out_on_silent_peer() {
        let r = run_farm(2, |ctx| {
            if ctx.tid() == 0 {
                matches!(
                    ctx.gather(7, &[1], Duration::from_millis(50)),
                    Err(CollectiveError::Comm(
                        CommError::Timeout | CommError::Disconnected
                    ))
                )
            } else {
                true
            }
        })
        .unwrap();
        assert!(r[0]);
    }

    #[test]
    fn gather_partial_reports_missing_peer() {
        let r = run_farm(3, |ctx| {
            if ctx.tid() == 0 {
                let out = ctx
                    .gather_partial(7, &[1, 2], &[], Duration::from_millis(100))
                    .unwrap();
                assert_eq!(out.ignored, 0, "nothing was quarantined");
                let got: Vec<_> = out
                    .slots
                    .iter()
                    .flatten()
                    .map(|env| env.decode::<Num>().unwrap().0)
                    .collect();
                (got, out.missing)
            } else if ctx.tid() == 1 {
                ctx.send(0, 7, &Num(10)).unwrap();
                (vec![], vec![])
            } else {
                (vec![], vec![]) // task 2 stays silent
            }
        })
        .unwrap();
        assert_eq!(r[0], (vec![10], vec![2]));
    }

    #[test]
    fn gather_partial_ignores_quarantined_peer() {
        let r = run_farm(3, |ctx| {
            if ctx.tid() == 0 {
                // Task 2 is quarantined: its stale message must neither
                // fill a slot nor trip the unknown-sender check — but it
                // must be counted, not silently dropped. Task 2 sends
                // before task 1 (enforced by the go-message below), so the
                // stale message is guaranteed to be dequeued mid-gather.
                let out = ctx.gather_partial(7, &[1], &[2], T).unwrap();
                assert!(out.missing.is_empty());
                assert_eq!(out.ignored, 1, "quarantined message not counted");
                out.slots[0].as_ref().unwrap().decode::<Num>().unwrap().0
            } else if ctx.tid() == 2 {
                ctx.send(0, 7, &Num(2)).unwrap();
                ctx.send(1, 9, &Num(0)).unwrap(); // go: the master's mailbox holds our message
                0
            } else {
                ctx.recv_timeout(T).unwrap(); // wait for task 2's go
                ctx.send(0, 7, &Num(1)).unwrap();
                0
            }
        })
        .unwrap();
        assert_eq!(r[0], 1);
    }

    #[test]
    fn round_trip_scatter_gather() {
        // Master scatters work items, slaves square them, master gathers.
        let r = run_farm(4, |ctx| {
            if ctx.tid() == 0 {
                for s in 1..4 {
                    ctx.send(s, 1, &Num(s as i64)).unwrap();
                }
                let sq: Vec<Num> = ctx.gather_msgs(2, &[1, 2, 3], T).unwrap();
                sq.iter().map(|n| n.0).sum::<i64>()
            } else {
                let n = ctx.recv_timeout(T).unwrap().decode::<Num>().unwrap().0;
                ctx.send(0, 2, &Num(n * n)).unwrap();
                0
            }
        })
        .unwrap();
        assert_eq!(r[0], 1 + 4 + 9);
    }
}
