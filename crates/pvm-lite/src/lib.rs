//! # pvm-lite — PVM-style message passing over OS threads
//!
//! The paper ran its master/slave cooperative search on a farm of 16 Alpha
//! processors "connected by a high speed optic fiber crossbar", talking
//! through the PVM library. This crate is the faithful thread-level stand-in
//! (DESIGN.md §4): tasks address each other by dense task ids, marshal
//! messages through explicit pack/unpack buffers ([`codec`]), exchange them
//! over reliable ordered mailboxes ([`farm`]), and synchronize search rounds
//! with a reusable barrier ([`barrier`]). The cooperation logic upstairs
//! never touches a thread primitive directly — it speaks only this API, as
//! the original spoke PVM.
//!
//! ```
//! use pvm_lite::{run_farm, codec::{Wire, PackBuffer, UnpackBuffer, CodecError}};
//! use std::time::Duration;
//!
//! struct Ping(u64);
//! impl Wire for Ping {
//!     fn pack(&self, b: &mut PackBuffer) { b.put_u64(self.0) }
//!     fn unpack(b: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
//!         Ok(Ping(b.get_u64()?))
//!     }
//! }
//!
//! let results = run_farm(2, |ctx| {
//!     if ctx.tid() == 0 {
//!         ctx.send(1, 0, &Ping(41)).unwrap();
//!         ctx.recv_timeout(Duration::from_secs(5)).unwrap()
//!             .decode::<Ping>().unwrap().0
//!     } else {
//!         let n = ctx.recv_timeout(Duration::from_secs(5)).unwrap()
//!             .decode::<Ping>().unwrap().0;
//!         ctx.send(0, 0, &Ping(n + 1)).unwrap();
//!         0
//!     }
//! }).unwrap();
//! assert_eq!(results[0], 42);
//! ```

#![warn(missing_docs)]

pub mod barrier;
pub mod channel;
pub mod codec;
pub mod collectives;
pub mod farm;
pub mod frame;
pub mod netfault;
pub mod socket;
pub mod transport;

pub use barrier::Barrier;
pub use codec::{fnv1a_64, CodecError, PackBuffer, UnpackBuffer, Wire};
pub use collectives::{CollectiveError, Collectives, PartialGather};
pub use farm::{
    run_farm, CommError, CommStats, Envelope, FarmError, FaultAction, FaultPlan, TaskCtx, TaskId,
    TaskOutcome, WorkerPool,
};
pub use frame::{
    encode_frame, read_frame, write_frame, FrameError, FRAME_HEADER_LEN, FRAME_TRAILER_LEN,
    MAX_FRAME_PAYLOAD,
};
pub use netfault::{NetFaultAction, NetFaultPlan, NetFaultState};
pub use socket::{
    Endpoint, FramedConn, FramedListener, HubStats, SocketError, SocketHub, SocketTransport,
};
pub use transport::{InProc, Transport};
