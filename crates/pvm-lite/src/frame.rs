//! Length-prefixed framing: [`Envelope`]s on a byte stream.
//!
//! The socket transports ship every envelope as one frame:
//!
//! ```text
//! [len: u32 LE] [from: u32 LE] [tag: u32 LE] [payload: len bytes] [fnv: u64 LE]
//! ```
//!
//! `len` counts payload bytes only, and is validated against
//! [`MAX_FRAME_PAYLOAD`] *before* any allocation — a corrupt or hostile
//! length header is rejected with [`FrameError::Oversized`], never
//! trusted with memory. The trailing `fnv` word is the FNV-1a checksum
//! of the payload: a frame whose payload arrives damaged surfaces as
//! [`FrameError::Corrupt`], and because the length header still framed
//! the bytes correctly the stream stays synchronised — the caller may
//! drop the frame and keep reading. Reads tolerate arbitrary splits (a
//! frame may arrive one byte at a time); a clean EOF on a frame boundary
//! is a regular end-of-stream (`Ok(None)`), an EOF mid-frame is
//! [`FrameError::Truncated`].

use crate::codec::fnv1a_64;
use crate::farm::{Envelope, TaskId};
use std::fmt;
use std::io::{self, Read, Write};

/// Upper bound on a frame's payload, checked before allocating. Generous
/// against real traffic (the biggest message, `ProblemMsg`, is a few
/// hundred KiB for the largest benchmark instances) while keeping a
/// garbage length header from requesting gigabytes.
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

/// Size of the fixed frame header.
pub const FRAME_HEADER_LEN: usize = 12;

/// Size of the checksum trailer after the payload.
pub const FRAME_TRAILER_LEN: usize = 8;

/// Framing failures.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The stream ended in the middle of a frame.
    Truncated,
    /// A frame's payload exceeds [`MAX_FRAME_PAYLOAD`]. On the read side
    /// the length header claimed too much and nothing was allocated; on
    /// the write side the payload was too large and nothing was written.
    Oversized {
        /// The length claimed (read side) or attempted (write side).
        len: u64,
    },
    /// The sender's [`TaskId`] does not fit the frame header's 32-bit
    /// `from` field; nothing was written.
    BadSender {
        /// The id that overflowed the header field.
        from: u64,
    },
    /// The payload's FNV-1a checksum did not match its trailer: the
    /// frame arrived damaged. The stream is still synchronised (the
    /// length header framed the bytes correctly), so the caller may
    /// drop this frame and keep reading.
    Corrupt,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o failed: {e}"),
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Oversized { len } => {
                write!(
                    f,
                    "frame length {len} exceeds the {MAX_FRAME_PAYLOAD}-byte cap"
                )
            }
            FrameError::BadSender { from } => {
                write!(f, "sender id {from} does not fit the frame header")
            }
            FrameError::Corrupt => write!(f, "frame payload failed its checksum"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one envelope as a frame. The sender's identity goes on the wire
/// explicitly — a socket carries no implicit task id.
///
/// Both header fields are range-checked in every build profile *before*
/// anything is written: a payload over [`MAX_FRAME_PAYLOAD`] or a `from`
/// id wider than 32 bits would otherwise truncate in the `u32` casts and
/// desynchronise the stream for every later frame on the connection. On
/// error the stream has not been touched and stays usable.
pub fn write_frame<W: Write>(
    w: &mut W,
    from: TaskId,
    tag: u32,
    payload: &[u8],
) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversized {
            len: payload.len() as u64,
        });
    }
    let from = u32::try_from(from).map_err(|_| FrameError::BadSender { from: from as u64 })?;
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..8].copy_from_slice(&from.to_le_bytes());
    header[8..12].copy_from_slice(&tag.to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.write_all(&fnv1a_64(payload).to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Encode one frame to a buffer instead of a stream: the exact bytes
/// [`write_frame`] would emit, checksum trailer included. This is what
/// the fault injector mangles before putting bytes on the wire, and the
/// same range checks apply — on error nothing is returned.
pub fn encode_frame(from: TaskId, tag: u32, payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    let mut wire = Vec::with_capacity(FRAME_HEADER_LEN + payload.len() + FRAME_TRAILER_LEN);
    write_frame(&mut wire, from, tag, payload)?;
    Ok(wire)
}

/// Fill `buf` from the reader, tolerating short and interrupted reads.
/// Returns how many bytes landed before EOF (== `buf.len()` on success).
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(filled)
}

/// Read one frame. `Ok(None)` is a clean end-of-stream (EOF exactly on a
/// frame boundary); an EOF anywhere inside a frame is
/// [`FrameError::Truncated`]. The payload buffer is only allocated after
/// the length header passes the [`MAX_FRAME_PAYLOAD`] check, and the
/// payload must match its checksum trailer ([`FrameError::Corrupt`]
/// otherwise — the stream stays synchronised, see the module docs).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Envelope>, FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    match read_full(r, &mut header)? {
        0 => return Ok(None),
        n if n < FRAME_HEADER_LEN => return Err(FrameError::Truncated),
        _ => {}
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
    let from = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as TaskId;
    let tag = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversized { len: len as u64 });
    }
    let mut data = vec![0u8; len];
    if read_full(r, &mut data)? < len {
        return Err(FrameError::Truncated);
    }
    let mut trailer = [0u8; FRAME_TRAILER_LEN];
    if read_full(r, &mut trailer)? < FRAME_TRAILER_LEN {
        return Err(FrameError::Truncated);
    }
    if u64::from_le_bytes(trailer) != fnv1a_64(&data) {
        return Err(FrameError::Corrupt);
    }
    Ok(Some(Envelope { from, tag, data }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A reader that hands out at most `chunk` bytes per `read` call —
    /// the split/partial-read torture device.
    struct Chunked<'a> {
        data: &'a [u8],
        pos: usize,
        chunk: usize,
    }

    impl Read for Chunked<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf
                .len()
                .min(self.chunk)
                .min(self.data.len().saturating_sub(self.pos));
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn round_trip(from: TaskId, tag: u32, payload: &[u8], chunk: usize) -> Envelope {
        let mut wire = Vec::new();
        write_frame(&mut wire, from, tag, payload).unwrap();
        let mut r = Chunked {
            data: &wire,
            pos: 0,
            chunk,
        };
        let env = read_frame(&mut r).unwrap().expect("one frame");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF after");
        env
    }

    #[test]
    fn frames_round_trip() {
        let env = round_trip(3, 7, b"hello frames", 64);
        assert_eq!(env.from, 3);
        assert_eq!(env.tag, 7);
        assert_eq!(env.data, b"hello frames");
    }

    #[test]
    fn empty_payload_round_trips() {
        let env = round_trip(0, 4, b"", 64);
        assert_eq!(env.data, b"");
    }

    #[test]
    fn split_reads_reassemble_every_chunk_size() {
        // One-byte reads split the header and payload at every boundary.
        for chunk in [1, 2, 3, 5, 11] {
            let payload: Vec<u8> = (0..100u8).collect();
            let env = round_trip(9, 42, &payload, chunk);
            assert_eq!(env.data, payload, "chunk {chunk}");
        }
    }

    #[test]
    fn back_to_back_frames_keep_order() {
        let mut wire = Vec::new();
        for k in 0..10u32 {
            write_frame(&mut wire, k as TaskId, k, &k.to_le_bytes()).unwrap();
        }
        let mut r = Chunked {
            data: &wire,
            pos: 0,
            chunk: 7,
        };
        for k in 0..10u32 {
            let env = read_frame(&mut r).unwrap().expect("frame");
            assert_eq!((env.from, env.tag), (k as TaskId, k));
            assert_eq!(env.data, k.to_le_bytes());
        }
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_length_header_is_rejected_without_allocating() {
        // A header claiming u32::MAX payload bytes: must error before any
        // attempt to read (or allocate) that much.
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        wire.extend_from_slice(&1u32.to_le_bytes());
        let err = read_frame(&mut Cursor::new(&wire)).unwrap_err();
        match err {
            FrameError::Oversized { len } => assert_eq!(len, u32::MAX as u64),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncated_header_and_payload_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 1, 2, b"full payload").unwrap();
        // Cut inside the header, the payload, then the checksum trailer.
        for cut in [
            1,
            FRAME_HEADER_LEN - 1,
            FRAME_HEADER_LEN + 3,
            wire.len() - 3,
        ] {
            let err = read_frame(&mut Cursor::new(&wire[..cut])).unwrap_err();
            assert!(matches!(err, FrameError::Truncated), "cut {cut}: {err:?}");
        }
    }

    #[test]
    fn damaged_payload_is_corrupt_and_the_stream_stays_in_sync() {
        // Two frames back to back; a bit flip anywhere in the first
        // frame's payload or trailer must surface as Corrupt — and the
        // second frame must still decode afterwards, because the length
        // header kept the stream framed.
        let mut first = Vec::new();
        write_frame(&mut first, 1, 2, b"damaged goods").unwrap();
        let mut second = Vec::new();
        write_frame(&mut second, 3, 4, b"survivor").unwrap();
        for flip in FRAME_HEADER_LEN..first.len() {
            let mut wire = first.clone();
            wire[flip] ^= 0x40;
            wire.extend_from_slice(&second);
            let mut r = Cursor::new(&wire);
            let err = read_frame(&mut r).unwrap_err();
            assert!(matches!(err, FrameError::Corrupt), "flip {flip}: {err:?}");
            let env = read_frame(&mut r).unwrap().expect("second frame");
            assert_eq!(
                (env.from, env.tag, env.data.as_slice()),
                (3, 4, &b"survivor"[..])
            );
            assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF after");
        }
    }

    #[test]
    fn encode_frame_matches_write_frame() {
        let encoded = encode_frame(5, 9, b"same bytes").unwrap();
        let mut streamed = Vec::new();
        write_frame(&mut streamed, 5, 9, b"same bytes").unwrap();
        assert_eq!(encoded, streamed);
        assert_eq!(
            encoded.len(),
            FRAME_HEADER_LEN + b"same bytes".len() + FRAME_TRAILER_LEN
        );
    }

    #[test]
    fn wire_messages_survive_the_framer() {
        use crate::codec::{CodecError, PackBuffer, UnpackBuffer, Wire};
        #[derive(Debug, Clone, PartialEq)]
        struct Sample {
            label: String,
            values: Vec<i64>,
        }
        impl Wire for Sample {
            fn pack(&self, buf: &mut PackBuffer) {
                buf.put_str(&self.label);
                buf.put_i64s(&self.values);
            }
            fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
                Ok(Sample {
                    label: buf.get_str()?,
                    values: buf.get_i64s()?,
                })
            }
        }
        let msg = Sample {
            label: "framed".to_string(),
            values: (-3..50).collect(),
        };
        let env = round_trip(2, 5, &msg.to_bytes(), 3);
        assert_eq!(env.decode::<Sample>().unwrap(), msg);
    }

    #[test]
    fn oversized_payload_is_rejected_before_any_write() {
        // One byte over the cap: a hard error in every build profile, and
        // the wire must stay untouched (the old code asserted only in
        // debug builds and silently truncated the length in release).
        let payload = vec![0u8; MAX_FRAME_PAYLOAD + 1];
        let mut wire = Vec::new();
        let err = write_frame(&mut wire, 1, 2, &payload).unwrap_err();
        match err {
            FrameError::Oversized { len } => assert_eq!(len, (MAX_FRAME_PAYLOAD + 1) as u64),
            other => panic!("expected Oversized, got {other:?}"),
        }
        assert!(wire.is_empty(), "nothing may reach the stream on error");
    }

    #[cfg(target_pointer_width = "64")]
    #[test]
    fn wide_sender_id_is_rejected_before_any_write() {
        let from: TaskId = (u32::MAX as usize) + 1;
        let mut wire = Vec::new();
        let err = write_frame(&mut wire, from, 0, b"x").unwrap_err();
        assert!(matches!(err, FrameError::BadSender { .. }), "{err:?}");
        assert!(wire.is_empty());
    }

    /// A writer that keeps only the 12 header bytes and counts the rest —
    /// lets the oversized property probe lengths around the 64 MiB cap
    /// without materialising a Vec per case.
    struct HeaderSink {
        header: Vec<u8>,
        written: u64,
    }

    impl Write for HeaderSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let room = FRAME_HEADER_LEN.saturating_sub(self.header.len());
            self.header.extend_from_slice(&buf[..room.min(buf.len())]);
            self.written += buf.len() as u64;
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    // Property (satellite: send-side oversized rejection): for lengths on
    // both sides of the cap, a send either writes a header whose length
    // field is *exactly* the payload length, or errors having written
    // nothing — the length on the wire never truncates.
    #[test]
    fn prop_send_side_length_is_exact_or_rejected() {
        let backing = vec![0u8; MAX_FRAME_PAYLOAD + 9];
        let mut state = 0xA076_1D64_78BD_642Fu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        // A handful of random lengths is enough: each in-range case now
        // also pays an FNV pass over the whole payload, and the cap is
        // 64 MiB — forty samples made this test crawl in debug builds.
        let mut lens: Vec<usize> = (0..10)
            .map(|_| (next() % (MAX_FRAME_PAYLOAD as u64 + 10)) as usize)
            .collect();
        lens.extend([
            0,
            1,
            MAX_FRAME_PAYLOAD - 1,
            MAX_FRAME_PAYLOAD,
            MAX_FRAME_PAYLOAD + 1,
        ]);
        for len in lens {
            let mut sink = HeaderSink {
                header: Vec::new(),
                written: 0,
            };
            let res = write_frame(&mut sink, 7, 3, &backing[..len]);
            if len <= MAX_FRAME_PAYLOAD {
                res.unwrap();
                assert_eq!(
                    sink.written,
                    (FRAME_HEADER_LEN + len + FRAME_TRAILER_LEN) as u64,
                    "len {len}"
                );
                let on_wire =
                    u32::from_le_bytes(sink.header[0..4].try_into().expect("4 bytes")) as usize;
                assert_eq!(on_wire, len, "length field must never truncate");
            } else {
                assert!(
                    matches!(res, Err(FrameError::Oversized { .. })),
                    "len {len}"
                );
                assert_eq!(sink.written, 0, "rejected send must not touch the wire");
            }
        }
    }

    // Property: arbitrary payloads survive the framer under arbitrary
    // read splits (satellite: round-trip arbitrary `Wire` messages through
    // the length-prefixed framer — every Wire message is such a payload).
    #[test]
    fn prop_arbitrary_payloads_round_trip_under_splits() {
        // In-tree deterministic generator (no registry deps): a cheap LCG
        // drives payload length, content, ids and chunk size.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..200 {
            let len = (next() % 512) as usize;
            let payload: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let from = (next() % 64) as TaskId;
            let tag = (next() % 16) as u32;
            let chunk = 1 + (next() % 32) as usize;
            let env = round_trip(from, tag, &payload, chunk);
            assert_eq!((env.from, env.tag, env.data), (from, tag, payload));
        }
    }
}
