//! The [`Transport`] trait: the communication surface the cooperation
//! protocol is written against.
//!
//! Everything upstairs — the collectives, the engine's master and slave
//! loops — addresses peers by dense [`TaskId`], exchanges tagged
//! [`Envelope`]s, and observes failures as [`CommError`]. This trait
//! captures exactly that surface so the same protocol code runs over two
//! very different substrates:
//!
//! * **`InProc`** — today's channel-backed mailboxes ([`TaskCtx`]); the
//!   trait impl delegates to the inherent methods, so behavior (and
//!   bit-level determinism) is unchanged.
//! * **Sockets** — [`crate::socket`]: the same envelopes as
//!   length-prefixed frames over Unix or TCP streams, with a handshake,
//!   reconnect and epoch fencing for peers in other processes.
//!
//! The supervision hooks ([`respawn`](Transport::respawn),
//! [`notify_orphans`](Transport::notify_orphans)) default to "not
//! supported": a backend that cannot resurrect peers simply reports the
//! respawn as failed and the caller falls back to quarantine.

use crate::codec::Wire;
use crate::farm::{CommError, CommStats, Envelope, TaskCtx, TaskId};
use std::time::Duration;

/// In-process transport: the channel-backed [`TaskCtx`] mailboxes, under
/// the name the two-backend architecture uses for them.
pub type InProc = TaskCtx;

/// A task's endpoint in some message-passing substrate.
///
/// Semantics every implementation must honor (they are what the protocol
/// layer relies on):
///
/// * Per-peer FIFO: two sends from the same peer are received in order.
/// * [`send_bytes`](Transport::send_bytes) to a dead peer fails with
///   [`CommError::PeerGone`]; it never blocks indefinitely.
/// * [`recv_timeout`](Transport::recv_timeout) returns
///   [`CommError::Timeout`] on an elapsed deadline and
///   [`CommError::Disconnected`] once no live peer can ever send again.
/// * [`comm_stats`](Transport::comm_stats) counts envelopes and payload
///   bytes exactly once, at the transport boundary — identical runs over
///   different backends report identical message counts.
pub trait Transport {
    /// This endpoint's task id (0 is the master by farm convention).
    fn tid(&self) -> TaskId;

    /// Number of tasks in the farm, this one included.
    fn ntasks(&self) -> usize;

    /// Send packed bytes to task `to`.
    fn send_bytes(&self, to: TaskId, tag: u32, data: Vec<u8>) -> Result<(), CommError>;

    /// Block until a message arrives or the timeout elapses. Timeouts too
    /// large for a deadline mean "wait forever".
    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, CommError>;

    /// Non-blocking receive.
    fn try_recv(&self) -> Option<Envelope>;

    /// This endpoint's cumulative communication totals.
    fn comm_stats(&self) -> CommStats;

    /// Pack and send a typed message.
    fn send<T: Wire>(&self, to: TaskId, tag: u32, msg: &T) -> Result<(), CommError> {
        self.send_bytes(to, tag, msg.to_bytes())
    }

    /// Block until a message arrives.
    fn recv(&self) -> Result<Envelope, CommError> {
        self.recv_timeout(Duration::MAX)
    }

    /// Supervision hook: bring a fresh incarnation of task `tid` into the
    /// farm (in-process: respawn the task closure; sockets: fence the old
    /// connection and wait for the peer to reconnect). Returns `false`
    /// when the backend cannot produce one — the default for transports
    /// without supervision.
    fn respawn(&self, tid: TaskId) -> bool {
        let _ = tid;
        false
    }

    /// Supervision hook: nudge superseded incarnations with an empty
    /// message of `tag` so they can exit promptly. No-op by default (a
    /// socket backend has no orphans: fencing closes the connection).
    fn notify_orphans(&self, tag: u32) {
        let _ = tag;
    }
}

impl Transport for TaskCtx {
    fn tid(&self) -> TaskId {
        TaskCtx::tid(self)
    }

    fn ntasks(&self) -> usize {
        TaskCtx::ntasks(self)
    }

    fn send_bytes(&self, to: TaskId, tag: u32, data: Vec<u8>) -> Result<(), CommError> {
        TaskCtx::send_bytes(self, to, tag, data)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, CommError> {
        TaskCtx::recv_timeout(self, timeout)
    }

    fn try_recv(&self) -> Option<Envelope> {
        TaskCtx::try_recv(self)
    }

    fn comm_stats(&self) -> CommStats {
        TaskCtx::comm_stats(self)
    }

    fn respawn(&self, tid: TaskId) -> bool {
        TaskCtx::respawn(self, tid)
    }

    fn notify_orphans(&self, tag: u32) {
        TaskCtx::notify_orphans(self, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CodecError, PackBuffer, UnpackBuffer};
    use crate::farm::run_farm;

    #[derive(Debug, Clone, PartialEq)]
    struct Num(i64);
    impl Wire for Num {
        fn pack(&self, buf: &mut PackBuffer) {
            buf.put_i64(self.0);
        }
        fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
            Ok(Num(buf.get_i64()?))
        }
    }

    /// Protocol code written against the trait, exercised over InProc.
    fn ping<C: Transport>(ctx: &C) -> i64 {
        if ctx.tid() == 0 {
            ctx.send(1, 1, &Num(20)).unwrap();
            let reply = ctx.recv_timeout(Duration::from_secs(5)).unwrap();
            reply.decode::<Num>().unwrap().0
        } else {
            let n = ctx
                .recv_timeout(Duration::from_secs(5))
                .unwrap()
                .decode::<Num>()
                .unwrap();
            ctx.send(0, 2, &Num(n.0 + 1)).unwrap();
            0
        }
    }

    #[test]
    fn inproc_satisfies_the_trait() {
        let r = run_farm(2, |ctx| ping(&ctx)).unwrap();
        assert_eq!(r[0], 21);
    }

    #[test]
    fn trait_comm_stats_match_the_boundary() {
        let r = run_farm(2, |ctx| {
            ping(&ctx);
            let stats = Transport::comm_stats(&ctx);
            (stats.sent, stats.received, stats.bytes_sent)
        })
        .unwrap();
        assert_eq!(r[0], (1, 1, 8));
        assert_eq!(r[1], (1, 1, 8));
    }
}
