//! In-tree MPMC channel on `std::sync::{Mutex, Condvar}`.
//!
//! The farm's mailboxes need exactly four things — `send`, blocking `recv`,
//! `recv_timeout`, and disconnect detection — and the paper's PVM3 model
//! (Niar & Fréville §4) needs nothing more than reliable, ordered,
//! unbounded message passing between tasks. This module provides that on
//! the standard library alone, so the whole workspace builds with zero
//! registry dependencies and the channel layer stays ours to instrument.
//!
//! Semantics match the crossbeam API the farm previously used:
//!
//! * unbounded FIFO queue, multiple producers *and* multiple consumers
//!   (every handle is `Clone`);
//! * `send` fails with [`SendError`] once every receiver is gone;
//! * `recv`/`recv_timeout` fail with a disconnect error once every sender
//!   is gone *and* the queue has drained (messages in flight are never
//!   lost);
//! * dropping the last handle on either side wakes all blocked peers.
//!
//! # Poisoning
//!
//! The standard mutex poisons when a thread panics while holding it. The
//! channel's critical sections only push/pop complete items onto a
//! `VecDeque` and adjust handle counts, so the protected state can never
//! be observed half-updated; every lock therefore recovers from poisoning
//! explicitly via [`std::sync::PoisonError::into_inner`] instead of
//! propagating an unrelated thread's panic.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver has been
/// dropped. The unsent message is handed back to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a channel with no receivers")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`]: every sender is gone and the
/// queue is empty, so no message can ever arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty channel with no senders")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// Every sender is gone and the queue is empty.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => write!(f, "channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty (senders may still produce).
    Empty,
    /// Every sender is gone and the queue is empty.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "channel is empty"),
            TryRecvError::Disconnected => write!(f, "channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signalled on every push and on last-sender disconnect.
    not_empty: Condvar,
}

impl<T> Shared<T> {
    /// Lock the state, recovering from poisoning (see module docs).
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half of an unbounded channel. Clone freely; the channel
/// disconnects for receivers once *all* clones are dropped.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of an unbounded channel. Clone freely; sends fail
/// once *all* clones are dropped.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded MPMC FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueue a message. Never blocks (the queue is unbounded); fails
    /// only when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.lock();
        if st.receivers == 0 {
            return Err(SendError(value));
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.senders -= 1;
        let disconnected = st.senders == 0;
        drop(st);
        if disconnected {
            // Wake every blocked receiver so it can observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives. Fails once every sender is gone and
    /// the queue has drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .shared
                .not_empty
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Block until a message arrives or `timeout` elapses. A timeout so
    /// large that the deadline overflows `Instant` (e.g. `Duration::MAX`)
    /// is treated as "no deadline": the call blocks like [`recv`] and can
    /// only fail with a disconnect.
    ///
    /// [`recv`]: Receiver::recv
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        // `Instant + Duration` aborts on overflow; `checked_add` turns a
        // huge timeout into an infinite wait instead.
        let deadline = Instant::now().checked_add(timeout);
        let mut st = self.shared.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            st = match deadline {
                None => self
                    .shared
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(RecvTimeoutError::Timeout);
                    }
                    let (guard, _result) = self
                        .shared
                        .not_empty
                        .wait_timeout(st, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    // Timeouts and spurious wakeups are indistinguishable
                    // here; the loop re-checks the queue and the deadline
                    // either way.
                    guard
                }
            };
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.lock();
        match st.queue.pop_front() {
            Some(v) => Ok(v),
            None if st.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Number of messages currently queued (racy the instant it returns;
    /// intended for diagnostics and tests).
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True when no message is currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.lock().receivers -= 1;
        // Senders discover the disconnect on their next `send`; nothing
        // blocks on the sending side, so no wakeup is needed.
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        for k in 0..100 {
            tx.send(k).unwrap();
        }
        for k in 0..100 {
            assert_eq!(rx.recv().unwrap(), k);
        }
    }

    #[test]
    fn try_recv_empty_then_value() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_timeout_expires() {
        let (tx, rx) = unbounded::<i32>();
        let t0 = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(30)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= Duration::from_millis(30), "returned early");
        drop(tx);
    }

    #[test]
    fn huge_timeout_does_not_overflow() {
        // `Instant::now() + Duration::MAX` aborts the process; the checked
        // deadline must instead behave as "no deadline" and still deliver.
        let (tx, rx) = unbounded();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(7).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::MAX), Ok(7));
        h.join().unwrap();
    }

    #[test]
    fn huge_timeout_still_sees_disconnect() {
        let (tx, rx) = unbounded::<i32>();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            drop(tx);
        });
        assert_eq!(
            rx.recv_timeout(Duration::MAX),
            Err(RecvTimeoutError::Disconnected)
        );
        h.join().unwrap();
    }

    #[test]
    fn recv_timeout_delivers_late_message() {
        let (tx, rx) = unbounded();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(42).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
        h.join().unwrap();
    }

    #[test]
    fn disconnect_on_sender_drop_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        // Queued messages survive the disconnect...
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        // ...then the disconnect surfaces.
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn blocked_recv_wakes_on_disconnect() {
        let (tx, rx) = unbounded::<i32>();
        let h = thread::spawn(move || rx.recv());
        thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn send_to_dropped_receiver_errors_and_returns_message() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn clone_keeps_channel_alive() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(5).unwrap(); // one sender clone still alive
        assert_eq!(rx.recv(), Ok(5));
        let rx2 = rx.clone();
        drop(rx);
        tx2.send(6).unwrap(); // one receiver clone still alive
        assert_eq!(rx2.recv(), Ok(6));
    }

    #[test]
    fn multi_producer_stress_no_loss_no_dup() {
        const PRODUCERS: usize = 8;
        const PER_PRODUCER: usize = 2_000;
        let (tx, rx) = unbounded();
        thread::scope(|s| {
            for p in 0..PRODUCERS {
                let tx = tx.clone();
                s.spawn(move || {
                    for k in 0..PER_PRODUCER {
                        tx.send(p * PER_PRODUCER + k).unwrap();
                    }
                });
            }
            drop(tx);
            let mut seen = vec![false; PRODUCERS * PER_PRODUCER];
            while let Ok(v) = rx.recv() {
                assert!(!seen[v], "duplicate delivery of {v}");
                seen[v] = true;
            }
            assert!(seen.iter().all(|&b| b), "lost messages");
        });
    }

    #[test]
    fn multi_consumer_stress_partitions_stream() {
        const CONSUMERS: usize = 4;
        const TOTAL: usize = 8_000;
        let (tx, rx) = unbounded();
        let received = AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..CONSUMERS {
                let rx = rx.clone();
                let received = &received;
                s.spawn(move || {
                    while rx.recv().is_ok() {
                        received.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            drop(rx);
            for k in 0..TOTAL {
                tx.send(k).unwrap();
            }
            drop(tx);
        });
        assert_eq!(received.load(Ordering::Relaxed), TOTAL);
    }

    #[test]
    fn per_sender_order_is_preserved() {
        let (tx, rx) = unbounded();
        thread::scope(|s| {
            for p in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move || {
                    for k in 0..500u64 {
                        tx.send((p, k)).unwrap();
                    }
                });
            }
            drop(tx);
            let mut last = [None::<u64>; 4];
            while let Ok((p, k)) = rx.recv() {
                let slot = &mut last[p as usize];
                assert!(slot.is_none_or(|prev| prev < k), "sender {p} reordered");
                *slot = Some(k);
            }
            for (p, slot) in last.iter().enumerate() {
                assert_eq!(*slot, Some(499), "sender {p} incomplete");
            }
        });
    }

    #[test]
    fn panicking_sender_poisons_nothing_observable() {
        // A thread that panics while the lock is held must not wedge the
        // channel for everyone else (poisoning is recovered internally).
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let h = thread::spawn(move || {
            tx2.send(1).unwrap();
            panic!("injected panic after send");
        });
        assert!(h.join().is_err());
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }
}
