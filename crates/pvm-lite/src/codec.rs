//! Pack/unpack message codec.
//!
//! PVM programs marshal every message into a typed buffer (`pvm_pkint`,
//! `pvm_pkdouble`, …) before sending; this module is the same contract:
//! a [`PackBuffer`] with explicit little-endian writers and an
//! [`UnpackBuffer`] with checked readers. Typed messages implement [`Wire`]
//! and travel between tasks as plain byte vectors, exactly as they would
//! over a real wire.

use std::fmt;

/// Encoding buffer.
#[derive(Debug, Default, Clone)]
pub struct PackBuffer {
    bytes: Vec<u8>,
}

/// Decoding cursor over a received byte vector.
#[derive(Debug)]
pub struct UnpackBuffer<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Decoding failures.
#[allow(missing_docs)] // field names are self-describing
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the read required.
    UnexpectedEof { wanted: usize, available: usize },
    /// A length prefix exceeded a sanity cap.
    LengthOverflow { length: u64 },
    /// String payload was not UTF-8.
    BadUtf8,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { wanted, available } => {
                write!(f, "needed {wanted} bytes, {available} available")
            }
            CodecError::LengthOverflow { length } => {
                write!(f, "length prefix {length} exceeds sanity cap")
            }
            CodecError::BadUtf8 => write!(f, "string payload is not valid UTF-8"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Sanity cap on decoded collection lengths (a corrupt length prefix must
/// not trigger a huge allocation).
const MAX_LEN: u64 = 1 << 32;

impl PackBuffer {
    /// Fresh empty buffer.
    pub fn new() -> Self {
        PackBuffer::default()
    }

    /// Consume into the raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when nothing was written.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Write a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    /// Write a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` (IEEE-754 bits, little-endian).
    pub fn put_f64(&mut self, v: f64) {
        self.bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Write a `usize` (as `u64`).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Write a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.bytes.extend_from_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Write a length-prefixed `i64` slice.
    pub fn put_i64s(&mut self, v: &[i64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_i64(x);
        }
    }

    /// Write a length-prefixed `u64` slice.
    pub fn put_u64s(&mut self, v: &[u64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u64(x);
        }
    }
}

impl<'a> UnpackBuffer<'a> {
    /// Cursor over received bytes.
    pub fn new(bytes: &'a [u8]) -> Self {
        UnpackBuffer { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                wanted: n,
                available: self.remaining(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an `f64`.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a `usize` (stored as `u64`).
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.get_u64()?;
        if v > MAX_LEN {
            return Err(CodecError::LengthOverflow { length: v });
        }
        Ok(v as usize)
    }

    /// Read a length-prefixed byte vector.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.checked_len()?;
        Ok(self.take(len)?.to_vec())
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let raw = self.get_bytes()?;
        String::from_utf8(raw).map_err(|_| CodecError::BadUtf8)
    }

    /// Read a length-prefixed `i64` vector.
    pub fn get_i64s(&mut self) -> Result<Vec<i64>, CodecError> {
        let len = self.checked_len()?;
        (0..len).map(|_| self.get_i64()).collect()
    }

    /// Read a length-prefixed `u64` vector.
    pub fn get_u64s(&mut self) -> Result<Vec<u64>, CodecError> {
        let len = self.checked_len()?;
        (0..len).map(|_| self.get_u64()).collect()
    }

    fn checked_len(&mut self) -> Result<usize, CodecError> {
        let len = self.get_u64()?;
        if len > MAX_LEN || len as usize > self.remaining() {
            return Err(CodecError::LengthOverflow { length: len });
        }
        Ok(len as usize)
    }
}

/// A message type with a byte-level wire format.
pub trait Wire: Sized {
    /// Serialize into the buffer.
    fn pack(&self, buf: &mut PackBuffer);
    /// Deserialize from the cursor.
    fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError>;

    /// Convenience: serialize to owned bytes.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = PackBuffer::new();
        self.pack(&mut buf);
        buf.into_bytes()
    }

    /// Convenience: deserialize from bytes, requiring full consumption.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut buf = UnpackBuffer::new(bytes);
        let v = Self::unpack(&mut buf)?;
        debug_assert_eq!(buf.remaining(), 0, "trailing bytes after unpack");
        Ok(v)
    }
}

/// FNV-1a 64-bit hash of a byte string. Used as the integrity checksum of
/// on-disk snapshot frames and as an instance fingerprint: cheap, stable
/// across platforms, and dependency-free — not cryptographic.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkp::prop_check;
    use mkp::testkit::gen;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a test vectors (64-bit).
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn scalar_roundtrips() {
        let mut p = PackBuffer::new();
        p.put_u8(7);
        p.put_u64(u64::MAX);
        p.put_i64(-42);
        p.put_f64(3.5);
        p.put_usize(123);
        let bytes = p.into_bytes();
        let mut u = UnpackBuffer::new(&bytes);
        assert_eq!(u.get_u8().unwrap(), 7);
        assert_eq!(u.get_u64().unwrap(), u64::MAX);
        assert_eq!(u.get_i64().unwrap(), -42);
        assert_eq!(u.get_f64().unwrap(), 3.5);
        assert_eq!(u.get_usize().unwrap(), 123);
        assert_eq!(u.remaining(), 0);
    }

    #[test]
    fn collections_roundtrip() {
        let mut p = PackBuffer::new();
        p.put_str("héllo");
        p.put_i64s(&[1, -2, 3]);
        p.put_u64s(&[]);
        p.put_bytes(&[9, 8]);
        let bytes = p.into_bytes();
        let mut u = UnpackBuffer::new(&bytes);
        assert_eq!(u.get_str().unwrap(), "héllo");
        assert_eq!(u.get_i64s().unwrap(), vec![1, -2, 3]);
        assert_eq!(u.get_u64s().unwrap(), Vec::<u64>::new());
        assert_eq!(u.get_bytes().unwrap(), vec![9, 8]);
    }

    #[test]
    fn eof_detected() {
        let mut u = UnpackBuffer::new(&[1, 2, 3]);
        assert!(matches!(u.get_u64(), Err(CodecError::UnexpectedEof { .. })));
    }

    #[test]
    fn corrupt_length_rejected_without_allocation() {
        let mut p = PackBuffer::new();
        p.put_u64(u64::MAX); // absurd length prefix
        let bytes = p.into_bytes();
        let mut u = UnpackBuffer::new(&bytes);
        assert!(matches!(
            u.get_bytes(),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn length_beyond_remaining_rejected() {
        let mut p = PackBuffer::new();
        p.put_u64(100); // claims 100 bytes but provides 2
        p.put_u8(1);
        p.put_u8(2);
        let bytes = p.into_bytes();
        let mut u = UnpackBuffer::new(&bytes);
        assert!(matches!(
            u.get_bytes(),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn bad_utf8_detected() {
        let mut p = PackBuffer::new();
        p.put_bytes(&[0xFF, 0xFE]);
        let bytes = p.into_bytes();
        let mut u = UnpackBuffer::new(&bytes);
        assert_eq!(u.get_str(), Err(CodecError::BadUtf8));
    }

    #[test]
    fn nan_and_infinities_roundtrip() {
        let mut p = PackBuffer::new();
        p.put_f64(f64::NAN);
        p.put_f64(f64::INFINITY);
        p.put_f64(f64::NEG_INFINITY);
        let bytes = p.into_bytes();
        let mut u = UnpackBuffer::new(&bytes);
        assert!(u.get_f64().unwrap().is_nan());
        assert_eq!(u.get_f64().unwrap(), f64::INFINITY);
        assert_eq!(u.get_f64().unwrap(), f64::NEG_INFINITY);
    }

    #[derive(Debug, Clone, PartialEq)]
    struct Demo {
        id: u64,
        values: Vec<i64>,
        label: String,
    }

    impl Wire for Demo {
        fn pack(&self, buf: &mut PackBuffer) {
            buf.put_u64(self.id);
            buf.put_i64s(&self.values);
            buf.put_str(&self.label);
        }
        fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
            Ok(Demo {
                id: buf.get_u64()?,
                values: buf.get_i64s()?,
                label: buf.get_str()?,
            })
        }
    }

    #[test]
    fn wire_trait_roundtrip() {
        let msg = Demo {
            id: 9,
            values: vec![5, -5],
            label: "x".into(),
        };
        let bytes = msg.to_bytes();
        assert_eq!(Demo::from_bytes(&bytes).unwrap(), msg);
    }

    #[test]
    fn prop_wire_roundtrip() {
        prop_check!(
            |rng| {
                (
                    rng.next_u64(),
                    gen::vec_of(rng, 0, 50, |r| r.next_u64() as i64),
                    gen::string_any(rng, 40),
                )
            },
            |input| {
                let (id, values, label) = input;
                let msg = Demo {
                    id: *id,
                    values: values.clone(),
                    label: label.clone(),
                };
                assert_eq!(Demo::from_bytes(&msg.to_bytes()).unwrap(), msg);
            }
        );
    }

    #[test]
    fn prop_truncation_never_panics() {
        prop_check!(
            |rng| {
                (
                    gen::vec_of(rng, 0, 20, |r| r.next_u64() as i64),
                    rng.next_u64(),
                )
            },
            |input| {
                let (values, cut_raw) = input;
                let msg = Demo {
                    id: 1,
                    values: values.clone(),
                    label: "t".into(),
                };
                let bytes = msg.to_bytes();
                let cut = (*cut_raw as usize) % bytes.len().max(1);
                // Decoding a truncated message must error, not panic.
                let _ = Demo::from_bytes(&bytes[..cut]);
            }
        );
    }
}
