//! Deterministic network fault injection for the socket transports.
//!
//! A [`NetFaultPlan`] names one data frame by its 1-based position on a
//! peer's send path and one [`NetFaultAction`] to apply to it — drop it,
//! duplicate it, truncate the stream mid-frame, corrupt its payload, or
//! delay it. The plan is armed as a [`NetFaultState`] and handed to
//! [`SocketTransport::connect_with`](crate::SocketTransport::connect_with)
//! (client side) or [`SocketHub::bind_with`](crate::SocketHub::bind_with)
//! (hub side); the state's frame counter lives in an [`Arc`] so it spans
//! reconnects — a fault that fired once stays fired, exactly like the
//! in-process `FaultPlan`'s one-shot kills.
//!
//! Handshake frames (`HELLO`/`WELCOME`) are never counted or faulted:
//! the plan indexes *data* frames, so `corrupt@1` means the first real
//! message regardless of how many reconnect handshakes preceded it.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Longest delay `delay@N:MS` accepts, in milliseconds. A send path
/// sleeping for more than a minute is indistinguishable from a hang.
pub const MAX_NET_FAULT_DELAY_MS: u64 = 60_000;

/// What to do to the chosen frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFaultAction {
    /// Swallow the frame: nothing reaches the wire.
    Drop,
    /// Send the frame twice, back to back.
    Duplicate,
    /// Write only the first half of the frame's bytes, then shut the
    /// stream down — the peer sees a stream that dies mid-frame.
    Truncate,
    /// Flip one payload bit but keep the original checksum trailer, so
    /// the receiver detects the damage and drops the frame.
    Corrupt,
    /// Sleep this long before sending the frame intact.
    Delay(Duration),
}

/// One planned fault: apply `action` to the `nth` (1-based) data frame
/// on the instrumented send path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetFaultPlan {
    /// 1-based index of the victim frame in send order.
    pub nth: u64,
    /// What happens to it.
    pub action: NetFaultAction,
}

impl NetFaultPlan {
    /// Parse a `--net-fault` spec. Accepted forms, with specific errors
    /// for everything else (mirroring the CLI's `--fault` hardening):
    ///
    /// * `drop@N` — swallow the Nth frame.
    /// * `dup@N` — send the Nth frame twice.
    /// * `truncate@N` — cut the stream mid-way through the Nth frame.
    /// * `corrupt@N` — flip a payload bit in the Nth frame.
    /// * `delay@N:MS` — delay the Nth frame by MS milliseconds.
    pub fn parse(raw: &str) -> Result<NetFaultPlan, String> {
        let Some((kind, rest)) = raw.split_once('@') else {
            return Err(format!(
                "malformed net-fault {raw:?} (want drop@N, dup@N, truncate@N, corrupt@N \
                 or delay@N:MS)"
            ));
        };
        let nth = |s: &str| -> Result<u64, String> {
            match s.parse::<u64>() {
                Ok(0) => Err(format!(
                    "net-fault {raw:?} names frame 0 (frames are counted from 1)"
                )),
                Ok(n) => Ok(n),
                Err(_) => Err(format!(
                    "net-fault {raw:?} has a malformed frame index {s:?} (want a positive number)"
                )),
            }
        };
        let action = match kind {
            "drop" => NetFaultAction::Drop,
            "dup" => NetFaultAction::Duplicate,
            "truncate" => NetFaultAction::Truncate,
            "corrupt" => NetFaultAction::Corrupt,
            "delay" => {
                let Some((n, ms)) = rest.split_once(':') else {
                    return Err(format!(
                        "net-fault {raw:?} is missing its delay (want delay@N:MS)"
                    ));
                };
                let ms: u64 = ms.parse().map_err(|_| {
                    format!("net-fault {raw:?} has a malformed delay {ms:?} (want milliseconds)")
                })?;
                if ms > MAX_NET_FAULT_DELAY_MS {
                    return Err(format!(
                        "net-fault {raw:?} delays longer than the {MAX_NET_FAULT_DELAY_MS} ms cap"
                    ));
                }
                return Ok(NetFaultPlan {
                    nth: nth(n)?,
                    action: NetFaultAction::Delay(Duration::from_millis(ms)),
                });
            }
            other => {
                return Err(format!(
                    "unknown net-fault kind {other:?} (want drop, dup, truncate, corrupt or delay)"
                ));
            }
        };
        Ok(NetFaultPlan {
            nth: nth(rest)?,
            action,
        })
    }
}

impl fmt::Display for NetFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.action {
            NetFaultAction::Drop => write!(f, "drop@{}", self.nth),
            NetFaultAction::Duplicate => write!(f, "dup@{}", self.nth),
            NetFaultAction::Truncate => write!(f, "truncate@{}", self.nth),
            NetFaultAction::Corrupt => write!(f, "corrupt@{}", self.nth),
            NetFaultAction::Delay(d) => write!(f, "delay@{}:{}", self.nth, d.as_millis()),
        }
    }
}

/// An armed plan: the plan plus the send-path frame counter. Shared via
/// [`Arc`] across every connection the instrumented endpoint makes, so
/// the count — and the one-shot firing — survives reconnects.
#[derive(Debug)]
pub struct NetFaultState {
    plan: NetFaultPlan,
    seen: AtomicU64,
    injected: AtomicU64,
}

impl NetFaultState {
    /// Arm a plan.
    pub fn new(plan: NetFaultPlan) -> NetFaultState {
        NetFaultState {
            plan,
            seen: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Count one outgoing data frame; returns the action to apply if
    /// this frame is the plan's victim.
    pub fn on_send(&self) -> Option<NetFaultAction> {
        let seen = self.seen.fetch_add(1, Ordering::Relaxed) + 1;
        (seen == self.plan.nth).then(|| {
            self.injected.fetch_add(1, Ordering::Relaxed);
            self.plan.action
        })
    }

    /// How many faults have fired (0 or 1 for a single plan).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_every_action() {
        assert_eq!(
            NetFaultPlan::parse("drop@3").unwrap(),
            NetFaultPlan {
                nth: 3,
                action: NetFaultAction::Drop
            }
        );
        assert_eq!(
            NetFaultPlan::parse("dup@1").unwrap().action,
            NetFaultAction::Duplicate
        );
        assert_eq!(
            NetFaultPlan::parse("truncate@7").unwrap().action,
            NetFaultAction::Truncate
        );
        assert_eq!(
            NetFaultPlan::parse("corrupt@2").unwrap(),
            NetFaultPlan {
                nth: 2,
                action: NetFaultAction::Corrupt
            }
        );
        assert_eq!(
            NetFaultPlan::parse("delay@4:250").unwrap(),
            NetFaultPlan {
                nth: 4,
                action: NetFaultAction::Delay(Duration::from_millis(250))
            }
        );
    }

    #[test]
    fn parse_rejects_with_specific_errors() {
        for (raw, needle) in [
            ("", "malformed net-fault"),
            ("drop", "malformed net-fault"),
            ("jam@3", "unknown net-fault kind"),
            ("drop@0", "frames are counted from 1"),
            ("drop@x", "malformed frame index"),
            ("delay@3", "missing its delay"),
            ("delay@3:soon", "malformed delay"),
            ("delay@3:9999999", "ms cap"),
        ] {
            let err = NetFaultPlan::parse(raw).unwrap_err();
            assert!(err.contains(needle), "{raw:?}: {err}");
        }
    }

    #[test]
    fn display_round_trips() {
        for raw in ["drop@3", "dup@1", "truncate@7", "corrupt@2", "delay@4:250"] {
            let plan = NetFaultPlan::parse(raw).unwrap();
            assert_eq!(plan.to_string(), raw);
            assert_eq!(NetFaultPlan::parse(&plan.to_string()).unwrap(), plan);
        }
    }

    #[test]
    fn state_fires_exactly_once_on_the_nth_send() {
        let state = NetFaultState::new(NetFaultPlan::parse("drop@3").unwrap());
        assert_eq!(state.on_send(), None);
        assert_eq!(state.on_send(), None);
        assert_eq!(state.on_send(), Some(NetFaultAction::Drop));
        assert_eq!(state.on_send(), None);
        assert_eq!(state.injected(), 1);
    }
}
