//! The processor farm: persistent worker threads, typed mailboxes, and
//! addressing.
//!
//! [`WorkerPool`] plays the role of PVM's daemon: `ntasks` OS threads are
//! spawned once and then serve any number of *runs*. Each [`WorkerPool::run`]
//! hands every worker a task closure with a fresh [`TaskCtx`] — per-run
//! mailboxes and barrier — so tasks address each other by dense task id
//! through reliable, ordered, unbounded channels, exactly as before, but
//! without paying thread spawn/join per run. [`run_farm`] remains the
//! one-shot convenience (`pvm_spawn` + teardown) built on a throwaway pool.
//! By the convention of the paper's master/slave model, task 0 is the master
//! and tasks `1..P+1` are the slaves — the library itself imposes no roles.

use crate::barrier::Barrier;
use crate::channel::{unbounded, Receiver, RecvTimeoutError, SendError, Sender};
use crate::codec::{CodecError, Wire};
use std::cell::{Cell, RefCell};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Task address inside a farm (0-based, dense).
pub type TaskId = usize;

/// A received message: sender id, user tag, packed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending task.
    pub from: TaskId,
    /// User-chosen message tag (protocol discriminator).
    pub tag: u32,
    /// Packed payload bytes.
    pub data: Vec<u8>,
}

impl Envelope {
    /// Decode the payload as a typed message.
    pub fn decode<T: Wire>(&self) -> Result<T, CodecError> {
        T::from_bytes(&self.data)
    }
}

/// Communication failures.
#[allow(missing_docs)] // field names are self-describing
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The destination task has terminated (its mailbox is gone).
    PeerGone { to: TaskId },
    /// No message arrived within the timeout.
    Timeout,
    /// Every possible sender has terminated; no message can ever arrive.
    Disconnected,
    /// The message cannot be encoded for the transport's wire format
    /// (payload over the frame cap). The connection is untouched and
    /// still usable — this rejects the *message*, not the peer.
    Oversized { len: u64 },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::PeerGone { to } => write!(f, "task {to} has terminated"),
            CommError::Timeout => write!(f, "receive timed out"),
            CommError::Disconnected => write!(f, "all peers terminated"),
            CommError::Oversized { len } => {
                write!(f, "message of {len} bytes exceeds the transport frame cap")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Farm-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FarmError {
    /// A task panicked; the farm result is unusable.
    TaskPanicked {
        /// Lowest id among the panicked tasks.
        tid: TaskId,
        /// The panic payload of that task, stringified (`panic!` message, or
        /// a placeholder for non-string payloads).
        message: String,
    },
}

impl fmt::Display for FarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FarmError::TaskPanicked { tid, message } => {
                write!(f, "task {tid} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for FarmError {}

/// Per-task outcome of a farm run (see [`WorkerPool::run_collect`]).
#[derive(Debug)]
pub enum TaskOutcome<R> {
    /// The task ran to completion.
    Done(R),
    /// The task panicked; the payload is its stringified panic message.
    Panicked(String),
}

impl<R> TaskOutcome<R> {
    /// The panic message, if the task panicked.
    pub fn panic_message(&self) -> Option<&str> {
        match self {
            TaskOutcome::Done(_) => None,
            TaskOutcome::Panicked(message) => Some(message),
        }
    }
}

/// What an injected fault does to its victim (see [`FaultPlan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic the task (a caught, task-level death: the pool thread
    /// survives, the task's peers observe a lost worker).
    Kill,
    /// Like [`Kill`](FaultAction::Kill), but permanent: every incarnation
    /// created by [`TaskCtx::respawn`] is re-armed to die on its first
    /// delivery, so resurrection can never succeed. Exists to exercise
    /// restart-budget exhaustion.
    KillRepeatedly,
    /// Sleep for the given duration before delivering the message,
    /// turning the task into a straggler.
    Delay(Duration),
}

/// A deterministic fault-injection plan for the *next* pool run: when the
/// chosen task dequeues its `on_receive`-th message (1-based, counting
/// every delivery into that task), the action fires — [`FaultAction::Kill`]
/// panics the task instead of delivering, [`FaultAction::Delay`] delays
/// the delivery. Exists so failure paths can be exercised reproducibly;
/// production runs never install a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The victim task.
    pub tid: TaskId,
    /// 1-based index of the received message that triggers the action.
    pub on_receive: usize,
    /// What happens when the trigger fires.
    pub action: FaultAction,
}

impl FaultPlan {
    /// Kill `tid` when it dequeues its `on_receive`-th message.
    pub fn kill(tid: TaskId, on_receive: usize) -> Self {
        FaultPlan {
            tid,
            on_receive,
            action: FaultAction::Kill,
        }
    }

    /// Delay `tid`'s `on_receive`-th delivery by `delay`.
    pub fn delay(tid: TaskId, on_receive: usize, delay: Duration) -> Self {
        FaultPlan {
            tid,
            on_receive,
            action: FaultAction::Delay(delay),
        }
    }

    /// Kill `tid` on its `on_receive`-th delivery, and kill every
    /// respawned incarnation on its first.
    pub fn kill_repeatedly(tid: TaskId, on_receive: usize) -> Self {
        FaultPlan {
            tid,
            on_receive,
            action: FaultAction::KillRepeatedly,
        }
    }
}

/// Installed fault state on a task's context (interior counter: the recv
/// methods take `&self`).
struct FaultState {
    on_receive: usize,
    action: FaultAction,
    received: Cell<usize>,
}

/// Per-task communication totals for one pool run (see
/// [`WorkerPool::last_comm_stats`]). Counts are cumulative across every
/// incarnation of the task within that run — a resurrected task keeps
/// adding to the same slot, so the totals describe the *logical* task.
///
/// Accounting happens exactly once, at the transport boundary: sends are
/// counted inside [`TaskCtx::send_bytes`] (the socket backends count at
/// their frame writer), receives inside the delivery path. Call sites
/// never tally bytes themselves, so every [`Transport`](crate::Transport)
/// implementation reports comparable figures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Envelopes successfully handed to a peer's mailbox.
    pub sent: u64,
    /// Envelopes dequeued from this task's own mailbox.
    pub received: u64,
    /// Payload bytes of the successfully sent envelopes.
    pub bytes_sent: u64,
    /// Payload bytes of the dequeued envelopes.
    pub bytes_received: u64,
}

/// Interior atomic cell backing one task's [`CommStats`]; one per task id,
/// shared (via `Arc`) by every incarnation the run creates. Also reused by
/// the socket backends so all transports count identically.
#[derive(Default)]
pub(crate) struct CommCell {
    pub(crate) sent: AtomicU64,
    pub(crate) received: AtomicU64,
    pub(crate) bytes_sent: AtomicU64,
    pub(crate) bytes_received: AtomicU64,
}

impl CommCell {
    pub(crate) fn snapshot(&self) -> CommStats {
        CommStats {
            sent: self.sent.load(Ordering::Relaxed),
            received: self.received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
        }
    }

    /// Count one successful send of `nbytes` payload bytes.
    pub(crate) fn count_sent(&self, nbytes: u64) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(nbytes, Ordering::Relaxed);
    }

    /// Count one delivered envelope of `nbytes` payload bytes.
    pub(crate) fn count_received(&self, nbytes: u64) {
        self.received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received.fetch_add(nbytes, Ordering::Relaxed);
    }
}

/// Per-task handle to the farm: identity, mailbox, barrier, and the run's
/// shared supervision state (which lets a master task resurrect dead peers
/// mid-run via [`respawn`](TaskCtx::respawn)).
pub struct TaskCtx {
    tid: TaskId,
    /// This task's view of the address table. `RefCell` so a respawn can
    /// repoint the caller's own entry at the reborn incarnation's mailbox.
    senders: RefCell<Vec<Sender<Envelope>>>,
    inbox: Receiver<Envelope>,
    barrier: Barrier,
    fault: Option<FaultState>,
    supervision: Arc<Supervision>,
    /// The run's comm accounting, indexed by task id; every incarnation of
    /// a task charges the same slot.
    comm: Arc<Vec<CommCell>>,
}

impl TaskCtx {
    /// This task's id.
    pub fn tid(&self) -> TaskId {
        self.tid
    }

    /// Number of tasks in the farm.
    pub fn ntasks(&self) -> usize {
        self.senders.borrow().len()
    }

    /// Send packed bytes to task `to`. Sending to oneself is allowed.
    pub fn send_bytes(&self, to: TaskId, tag: u32, data: Vec<u8>) -> Result<(), CommError> {
        let senders = self.senders.borrow();
        assert!(to < senders.len(), "task id {to} out of range");
        let nbytes = data.len() as u64;
        senders[to]
            .send(Envelope {
                from: self.tid,
                tag,
                data,
            })
            .map_err(|_| CommError::PeerGone { to })
            .inspect(|()| self.comm[self.tid].count_sent(nbytes))
    }

    /// This task's cumulative communication totals so far in the run
    /// (shared across every incarnation of the task id).
    pub fn comm_stats(&self) -> CommStats {
        self.comm[self.tid].snapshot()
    }

    /// Pack and send a typed message.
    pub fn send<T: Wire>(&self, to: TaskId, tag: u32, msg: &T) -> Result<(), CommError> {
        self.send_bytes(to, tag, msg.to_bytes())
    }

    /// Block until a message arrives.
    pub fn recv(&self) -> Result<Envelope, CommError> {
        self.inbox
            .recv()
            .map_err(|_| CommError::Disconnected)
            .map(|env| self.deliver(env))
    }

    /// Block until a message arrives or the timeout elapses. Cooperative
    /// protocols should prefer this so a dead peer surfaces as an error
    /// instead of a hang. Timeouts too large for an `Instant` deadline
    /// mean "wait forever" (see [`Receiver::recv_timeout`]).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, CommError> {
        self.inbox
            .recv_timeout(timeout)
            .map_err(|e| match e {
                RecvTimeoutError::Timeout => CommError::Timeout,
                RecvTimeoutError::Disconnected => CommError::Disconnected,
            })
            .map(|env| self.deliver(env))
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.inbox.try_recv().ok().map(|env| self.deliver(env))
    }

    /// Count a delivery against the installed fault plan, firing the
    /// action when the trigger is reached (no-op without a plan).
    fn deliver(&self, env: Envelope) -> Envelope {
        self.comm[self.tid].count_received(env.data.len() as u64);
        if let Some(fault) = &self.fault {
            let n = fault.received.get() + 1;
            fault.received.set(n);
            if n == fault.on_receive {
                match fault.action {
                    FaultAction::Kill | FaultAction::KillRepeatedly => {
                        panic!("fault injection: task {} killed on receive {n}", self.tid)
                    }
                    FaultAction::Delay(delay) => std::thread::sleep(delay),
                }
            }
        }
        env
    }

    /// Farm-wide rendezvous (all tasks). Returns `true` for the round
    /// leader.
    pub fn barrier(&self) -> bool {
        self.barrier.wait()
    }

    /// Resurrect task `tid` mid-run: a fresh incarnation of the task — new
    /// mailbox, fresh context, running the same task closure — is
    /// dispatched onto the pool, and the canonical address table is
    /// updated so this caller's subsequent sends to `tid` reach the reborn
    /// incarnation. A superseded incarnation still alive (a straggler)
    /// keeps running against its old mailbox until it exits on its own or
    /// is nudged by [`notify_orphans`](TaskCtx::notify_orphans); only this
    /// caller's sender table is refreshed — other live tasks keep their
    /// stale entries, which fits a master/slave protocol where only the
    /// master addresses workers. The reborn incarnation shares the run's
    /// barrier; protocols that rendezvous on it must not respawn.
    ///
    /// Returns `false` if the run is already retiring (no new incarnation
    /// can be admitted).
    pub fn respawn(&self, tid: TaskId) -> bool {
        assert!(tid != self.tid, "a task cannot respawn itself");
        let mut inner = self.supervision.lock();
        assert!(tid < inner.senders.len(), "task id {tid} out of range");
        if inner.launch.is_none() {
            return false;
        }
        let (tx, rx) = unbounded::<Envelope>();
        let old = std::mem::replace(&mut inner.senders[tid], tx);
        inner.orphans.push(old);
        let fault = inner
            .fault_plan
            .filter(|p| p.tid == tid && p.action == FaultAction::KillRepeatedly)
            .map(|p| FaultState {
                on_receive: 1, // re-armed: the reborn victim dies on its first delivery
                action: p.action,
                received: Cell::new(0),
            });
        let ctx = TaskCtx {
            tid,
            senders: RefCell::new(inner.senders.clone()),
            inbox: rx,
            barrier: self.barrier.clone(),
            fault,
            supervision: Arc::clone(&self.supervision),
            comm: Arc::clone(&self.comm),
        };
        let job = (inner.launch.as_ref().expect("checked above"))(tid, ctx);
        inner.extra_dispatched += 1;
        // Prefer the task's pool thread (idle again after a caught panic);
        // if it is truly dead (its injector disconnected), rebuild it with
        // a fallback thread the pool adopts when the run ends.
        let injector = inner
            .replacements
            .iter()
            .rev()
            .find(|(t, _, _)| *t == tid)
            .map(|(_, tx, _)| tx)
            .unwrap_or(&inner.injectors[tid]);
        if let Err(SendError(job)) = injector.send(job) {
            let (tx, handle) = spawn_worker(tid);
            assert!(tx.send(job).is_ok(), "fresh worker rejected its job");
            inner.replacements.push((tid, tx, handle));
        }
        // Refresh the caller's own address table.
        self.senders.borrow_mut()[tid] = inner.senders[tid].clone();
        true
    }

    /// Nudge every superseded incarnation with an empty message of `tag`
    /// (typically the protocol's shutdown tag) so orphans blocked in a
    /// receive can exit promptly instead of waiting out a timeout.
    /// Incarnations already gone are skipped silently.
    pub fn notify_orphans(&self, tag: u32) {
        let inner = self.supervision.lock();
        for tx in &inner.orphans {
            let _ = tx.send(Envelope {
                from: self.tid,
                tag,
                data: Vec::new(),
            });
        }
    }
}

/// Factory minting the job for one task incarnation, type-erased over the
/// run's task closure and result type. Retired (`None`) once the run's
/// collection loop has ended, after which no incarnation can be admitted.
type Launch = Box<dyn Fn(TaskId, TaskCtx) -> Job + Send>;

/// Mid-run supervision state shared by every task context of one run.
struct SupervisionInner {
    /// Canonical address table: index `tid` always points at the mailbox
    /// of the *live* incarnation of task `tid`.
    senders: Vec<Sender<Envelope>>,
    /// Job injectors of the pool threads, in task order.
    injectors: Vec<Sender<Job>>,
    /// Job factory for reborn incarnations; `None` once the run retires.
    launch: Option<Launch>,
    /// Jobs dispatched beyond the initial one-per-task; each reports a
    /// completion of its own, growing the collection target.
    extra_dispatched: usize,
    /// Fallback threads spawned because a pool thread was found dead
    /// mid-run; adopted into the pool when the run ends.
    replacements: Vec<(TaskId, Sender<Job>, std::thread::JoinHandle<()>)>,
    /// Mailbox senders of superseded incarnations, kept so
    /// [`TaskCtx::notify_orphans`] can unblock them at shutdown.
    orphans: Vec<Sender<Envelope>>,
    /// The run's fault plan; re-arms [`FaultAction::KillRepeatedly`] on
    /// every respawn of its victim.
    fault_plan: Option<FaultPlan>,
}

/// Shared wrapper around [`SupervisionInner`] (poison-recovering lock, like
/// every lock in this crate).
struct Supervision {
    inner: Mutex<SupervisionInner>,
}

impl Supervision {
    fn lock(&self) -> MutexGuard<'_, SupervisionInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A job shipped to a pool worker. The `'static` bound is a lie the pool
/// maintains internally: jobs borrow from the [`WorkerPool::run`] stack
/// frame, and `run` never returns before every dispatched job has finished.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Stringify a panic payload (the common `&str` / `String` cases; anything
/// else gets a placeholder — the task id still locates the failure).
fn panic_payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A persistent farm: `ntasks` worker threads spawned once, reused by every
/// [`run`](WorkerPool::run) until the pool is dropped.
///
/// Each run gets fresh mailboxes and a fresh barrier, so runs are fully
/// isolated from each other; only the OS threads are amortized. A task that
/// panics is caught on its worker thread — the pool survives and the run
/// reports [`FarmError::TaskPanicked`] with the original panic message. A
/// worker whose OS thread actually died (it can only die by unwinding
/// outside a task, e.g. [`kill_thread`](WorkerPool::kill_thread)) is
/// replaced at the start of the next run, so a degraded pool heals itself
/// between runs.
pub struct WorkerPool {
    injectors: Vec<Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Threads respawned by healing over the pool's lifetime.
    respawned: usize,
    /// One-shot fault plan consumed by the next run (testing hook).
    fault_plan: Option<FaultPlan>,
    /// Per-task comm totals of the most recent run (empty before any run).
    last_comm: Vec<CommStats>,
}

/// Spawn one pool worker: a thread serving jobs from its injector until
/// the injector is dropped.
fn spawn_worker(tid: TaskId) -> (Sender<Job>, std::thread::JoinHandle<()>) {
    let (tx, rx) = unbounded::<Job>();
    let handle = std::thread::Builder::new()
        .name(format!("pvm-worker-{tid}"))
        .spawn(move || {
            // Serve jobs until the pool drops the injector. Jobs dispatched
            // by `run_collect` never unwind here (they wrap the task in
            // catch_unwind); a job that does unwind kills this thread, and
            // `heal` replaces it on the next run.
            while let Ok(job) = rx.recv() {
                job();
            }
        })
        .expect("spawn pool worker");
    (tx, handle)
}

impl WorkerPool {
    /// Spawn a pool of `ntasks` worker threads (one per farm task).
    pub fn new(ntasks: usize) -> Self {
        assert!(ntasks >= 1, "farm needs at least one task");
        let mut injectors = Vec::with_capacity(ntasks);
        let mut handles = Vec::with_capacity(ntasks);
        for tid in 0..ntasks {
            let (tx, handle) = spawn_worker(tid);
            injectors.push(tx);
            handles.push(handle);
        }
        WorkerPool {
            injectors,
            handles,
            respawned: 0,
            fault_plan: None,
            last_comm: Vec::new(),
        }
    }

    /// Number of tasks (worker threads) in the pool.
    pub fn ntasks(&self) -> usize {
        self.injectors.len()
    }

    /// The ids of the pool's OS threads, in task order. Stable across runs —
    /// the observable guarantee that runs reuse threads instead of
    /// respawning — except for threads that died and were healed.
    pub fn thread_ids(&self) -> Vec<std::thread::ThreadId> {
        self.handles.iter().map(|h| h.thread().id()).collect()
    }

    /// Threads the pool has respawned to replace dead ones (0 for a pool
    /// that never lost a thread).
    pub fn respawned_threads(&self) -> usize {
        self.respawned
    }

    /// Per-task communication totals of the most recent
    /// [`run`](WorkerPool::run) / [`run_collect`](WorkerPool::run_collect),
    /// in task-id order (empty before the first run). Totals are cumulative
    /// over every incarnation a task had within that run.
    pub fn last_comm_stats(&self) -> &[CommStats] {
        &self.last_comm
    }

    /// Install a one-shot [`FaultPlan`]: the next [`run`](WorkerPool::run)
    /// (or [`run_collect`](WorkerPool::run_collect)) injects the fault into
    /// the chosen task, then the plan is cleared. Testing hook.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Kill the OS thread behind task `tid` (it unwinds outside any task
    /// job), then wait for it to die. The pool is degraded until the next
    /// run heals it by respawning the thread. Testing hook for the healing
    /// path; task-level failures should use [`FaultPlan`] instead.
    pub fn kill_thread(&mut self, tid: TaskId) {
        assert!(tid < self.ntasks(), "task id {tid} out of range");
        let poison: Job = Box::new(|| panic!("fault injection: pool thread killed"));
        if self.injectors[tid].send(poison).is_ok() {
            while !self.handles[tid].is_finished() {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    /// Replace dead worker threads so the next run has a full farm.
    fn heal(&mut self) {
        for tid in 0..self.handles.len() {
            if self.handles[tid].is_finished() {
                let (tx, handle) = spawn_worker(tid);
                let old = std::mem::replace(&mut self.handles[tid], handle);
                self.injectors[tid] = tx;
                let _ = old.join(); // reap; the panic payload is expected
                self.respawned += 1;
            }
        }
    }

    /// Run one farm: every task executes `f` with its own [`TaskCtx`].
    /// Returns the per-task results in task-id order, or the lowest
    /// panicking task id with its panic message. Convenience over
    /// [`run_collect`](WorkerPool::run_collect) for callers that treat any
    /// task death as fatal.
    pub fn run<R, F>(&mut self, f: F) -> Result<Vec<R>, FarmError>
    where
        R: Send,
        F: Fn(TaskCtx) -> R + Sync,
    {
        let outcomes = self.run_collect(f);
        let mut results = Vec::with_capacity(outcomes.len());
        let mut panicked: Option<(TaskId, String)> = None;
        for (tid, out) in outcomes.into_iter().enumerate() {
            match out {
                TaskOutcome::Done(r) => results.push(r),
                TaskOutcome::Panicked(message) => {
                    if panicked.is_none() {
                        panicked = Some((tid, message));
                    }
                }
            }
        }
        match panicked {
            Some((tid, message)) => Err(FarmError::TaskPanicked { tid, message }),
            None => Ok(results),
        }
    }

    /// Run one farm and report every task's individual outcome in task-id
    /// order. A panicking task does not hide its peers' results — callers
    /// that degrade gracefully (a master surviving slave loss) read the
    /// survivors' results here and match panics to tasks themselves.
    pub fn run_collect<R, F>(&mut self, f: F) -> Vec<TaskOutcome<R>>
    where
        R: Send,
        F: Fn(TaskCtx) -> R + Sync,
    {
        self.heal();
        let fault_plan = self.fault_plan.take();
        let ntasks = self.ntasks();
        let mut senders = Vec::with_capacity(ntasks);
        let mut receivers = Vec::with_capacity(ntasks);
        for _ in 0..ntasks {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let barrier = Barrier::new(ntasks);
        let comm: Arc<Vec<CommCell>> = Arc::new((0..ntasks).map(|_| CommCell::default()).collect());
        let (done_tx, done_rx) = unbounded::<(TaskId, Result<R, String>)>();

        // The launch closure turns a (tid, ctx) pair into a dispatchable
        // job; stashing it in the shared supervision state is what lets a
        // running task mint *new* incarnations mid-run (TaskCtx::respawn).
        let launch: Box<dyn Fn(TaskId, TaskCtx) -> Job + Send + '_> = {
            let f = &f;
            let done_tx = done_tx.clone();
            Box::new(move |tid, ctx| {
                let done = done_tx.clone();
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let out = catch_unwind(AssertUnwindSafe(|| f(ctx)))
                        .map_err(|payload| panic_payload_message(payload.as_ref()));
                    // The receiver outlives every job; a failed send can
                    // only mean `run_collect` already returned, which the
                    // protocol forbids.
                    let _ = done.send((tid, out));
                });
                // SAFETY: jobs borrow `f` and the done sender from the
                // `run_collect` stack frame. `run_collect` blocks below
                // until every dispatched job — initial and respawned alike
                // (the collection target counts extra_dispatched) — has
                // either sent its completion (panics are caught) or is
                // provably dead (its `done` sender dropped with the dying
                // thread, disconnecting `done_rx`), so no borrow outlives
                // that frame. Workers only terminate when the pool is
                // dropped, which requires `&mut self` exclusivity to have
                // ended — or by a non-task unwind, which drops the queued
                // job and its borrows on that dead thread before `done_rx`
                // can disconnect.
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) }
            })
        };
        // SAFETY: the same frame-outliving argument covers the factory
        // itself — it is retired (dropped from the supervision state)
        // before `run_collect` returns, so erasing its borrow of `f` and
        // the done sender to 'static never lets them dangle.
        let launch: Launch = unsafe {
            std::mem::transmute::<Box<dyn Fn(TaskId, TaskCtx) -> Job + Send + '_>, Launch>(launch)
        };

        let supervision = Arc::new(Supervision {
            inner: Mutex::new(SupervisionInner {
                senders: senders.clone(),
                injectors: self.injectors.clone(),
                launch: Some(launch),
                extra_dispatched: 0,
                replacements: Vec::new(),
                orphans: Vec::new(),
                fault_plan,
            }),
        });

        let mut dispatched = 0usize;
        for (tid, inbox) in receivers.into_iter().enumerate() {
            let ctx = TaskCtx {
                tid,
                senders: RefCell::new(senders.clone()),
                inbox,
                barrier: barrier.clone(),
                fault: fault_plan
                    .filter(|plan| plan.tid == tid)
                    .map(|plan| FaultState {
                        on_receive: plan.on_receive,
                        action: plan.action,
                        received: Cell::new(0),
                    }),
                supervision: Arc::clone(&supervision),
                comm: Arc::clone(&comm),
            };
            let job = {
                let inner = supervision.lock();
                (inner.launch.as_ref().expect("installed above"))(tid, ctx)
            };
            if self.injectors[tid].send(job).is_ok() {
                dispatched += 1;
            }
        }
        drop(senders); // tasks + supervision hold the only mailbox senders now
        drop(done_tx); // jobs + the launch factory hold the remaining clones

        let mut results: Vec<Option<TaskOutcome<R>>> = (0..ntasks).map(|_| None).collect();
        let mut completed = 0usize;
        // The target is re-read every round: a respawn performed by a
        // still-running task grows it before that task's own completion
        // can arrive, so the loop never exits with a reborn incarnation
        // outstanding.
        loop {
            let target = dispatched + supervision.lock().extra_dispatched;
            if completed >= target {
                break;
            }
            // A disconnect means a worker thread died with its job still
            // queued (its `done` sender is gone); the unfilled slots below
            // record that instead of wedging the caller.
            let Ok((tid, out)) = done_rx.recv() else {
                break;
            };
            completed += 1;
            // Last write wins: a reborn incarnation's completion (always
            // later on the FIFO done channel) supersedes the record of the
            // incarnation it replaced.
            results[tid] = Some(match out {
                Ok(r) => TaskOutcome::Done(r),
                Err(message) => TaskOutcome::Panicked(message),
            });
        }

        // Retire the run: drop the launch factory (and its borrows of this
        // frame) and adopt fallback threads spawned mid-run into the pool.
        let replacements = {
            let mut inner = supervision.lock();
            inner.launch = None;
            std::mem::take(&mut inner.replacements)
        };
        for (tid, tx, handle) in replacements {
            self.injectors[tid] = tx;
            let old = std::mem::replace(&mut self.handles[tid], handle);
            let _ = old.join(); // dead — that is why the fallback exists
            self.respawned += 1;
        }
        // Every task has completed (or provably died), so the totals are
        // final; publish them for the caller's telemetry.
        self.last_comm = comm.iter().map(CommCell::snapshot).collect();

        results
            .into_iter()
            .map(|r| r.unwrap_or_else(|| TaskOutcome::Panicked("pool worker thread died".into())))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.injectors.clear(); // disconnect: workers exit their serve loop
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Run `ntasks` tasks once, all executing `f` with their own [`TaskCtx`].
/// Returns the per-task results in task-id order, or the first panicking
/// task id with the original panic message. One-shot convenience over a
/// throwaway [`WorkerPool`]; callers with repeated runs should hold a pool
/// (or a `core` Engine) instead.
pub fn run_farm<R, F>(ntasks: usize, f: F) -> Result<Vec<R>, FarmError>
where
    R: Send,
    F: Fn(TaskCtx) -> R + Sync,
{
    WorkerPool::new(ntasks).run(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{PackBuffer, UnpackBuffer};

    const T: Duration = Duration::from_secs(5);

    #[derive(Debug, Clone, PartialEq)]
    struct Num(i64);
    impl Wire for Num {
        fn pack(&self, buf: &mut PackBuffer) {
            buf.put_i64(self.0);
        }
        fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
            Ok(Num(buf.get_i64()?))
        }
    }

    #[test]
    fn single_task_farm() {
        let r = run_farm(1, |ctx| ctx.tid() * 10).unwrap();
        assert_eq!(r, vec![0]);
    }

    #[test]
    fn results_in_task_order() {
        let r = run_farm(5, |ctx| ctx.tid()).unwrap();
        assert_eq!(r, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ping_pong() {
        let r = run_farm(2, |ctx| {
            if ctx.tid() == 0 {
                ctx.send(1, 1, &Num(21)).unwrap();
                let reply = ctx.recv_timeout(T).unwrap();
                reply.decode::<Num>().unwrap().0
            } else {
                let msg = ctx.recv_timeout(T).unwrap();
                assert_eq!(msg.from, 0);
                assert_eq!(msg.tag, 1);
                let n = msg.decode::<Num>().unwrap();
                ctx.send(0, 2, &Num(n.0 * 2)).unwrap();
                0
            }
        })
        .unwrap();
        assert_eq!(r[0], 42);
    }

    #[test]
    fn master_gathers_from_all_slaves() {
        let p = 4;
        let r = run_farm(p + 1, |ctx| {
            if ctx.tid() == 0 {
                let mut sum = 0i64;
                for _ in 0..p {
                    sum += ctx.recv_timeout(T).unwrap().decode::<Num>().unwrap().0;
                }
                sum
            } else {
                ctx.send(0, 0, &Num(ctx.tid() as i64)).unwrap();
                0
            }
        })
        .unwrap();
        assert_eq!(r[0], (1..=p as i64).sum::<i64>());
    }

    #[test]
    fn messages_from_one_sender_keep_order() {
        let r = run_farm(2, |ctx| {
            if ctx.tid() == 0 {
                for k in 0..100 {
                    ctx.send(1, 0, &Num(k)).unwrap();
                }
                0
            } else {
                let mut last = -1;
                for _ in 0..100 {
                    let v = ctx.recv_timeout(T).unwrap().decode::<Num>().unwrap().0;
                    assert_eq!(v, last + 1, "reordered delivery");
                    last = v;
                }
                last
            }
        })
        .unwrap();
        assert_eq!(r[1], 99);
    }

    #[test]
    fn self_send_works() {
        let r = run_farm(1, |ctx| {
            ctx.send(0, 7, &Num(5)).unwrap();
            ctx.recv_timeout(T).unwrap().decode::<Num>().unwrap().0
        })
        .unwrap();
        assert_eq!(r, vec![5]);
    }

    #[test]
    fn barrier_synchronizes_rounds() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_farm(4, |ctx| {
            for round in 1..=10usize {
                counter.fetch_add(1, Ordering::SeqCst);
                ctx.barrier();
                // After the barrier every task must observe all increments
                // of this round.
                assert!(counter.load(Ordering::SeqCst) >= round * 4);
                ctx.barrier();
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 40);
    }

    #[test]
    fn panic_is_reported_with_task_id_and_message() {
        let err = run_farm(3, |ctx| {
            if ctx.tid() == 1 {
                panic!("injected failure {}", 41 + 1);
            }
        })
        .unwrap_err();
        let FarmError::TaskPanicked { tid, message } = err;
        assert_eq!(tid, 1);
        assert!(
            message.contains("injected failure 42"),
            "panic payload lost: {message:?}"
        );
    }

    #[test]
    fn recv_timeout_surfaces_dead_peer() {
        // Slave dies before sending; master's timed receive must error
        // rather than hang.
        let r = run_farm(2, |ctx| {
            if ctx.tid() == 0 {
                matches!(
                    ctx.recv_timeout(Duration::from_millis(50)),
                    Err(CommError::Timeout | CommError::Disconnected)
                )
            } else {
                true // slave exits immediately
            }
        })
        .unwrap();
        assert!(r[0]);
    }

    #[test]
    fn send_to_finished_task_errors() {
        let r = run_farm(2, |ctx| {
            if ctx.tid() == 0 {
                // Wait for the peer to be done, then send into the void.
                let hello = ctx.recv_timeout(T).unwrap();
                assert_eq!(hello.tag, 9);
                // Spin until the send fails (peer teardown is asynchronous).
                for _ in 0..1000 {
                    if ctx.send(1, 0, &Num(1)).is_err() {
                        return true;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                false
            } else {
                ctx.send(0, 9, &Num(0)).unwrap();
                true // exit drops the mailbox
            }
        })
        .unwrap();
        assert!(r[0], "send to dead task never errored");
    }

    #[test]
    fn send_out_of_range_panics_the_task() {
        // The panic happens on the task thread and surfaces as a farm error
        // carrying the original assertion message.
        let err = run_farm(1, |ctx| {
            let _ = ctx.send_bytes(5, 0, vec![]);
        })
        .unwrap_err();
        let FarmError::TaskPanicked { tid, message } = err;
        assert_eq!(tid, 0);
        assert!(message.contains("out of range"), "got: {message:?}");
    }

    #[test]
    fn pool_reuses_threads_across_runs() {
        let mut pool = WorkerPool::new(3);
        let before = pool.thread_ids();
        let ids1 = pool.run(|_ctx| std::thread::current().id()).unwrap();
        let ids2 = pool.run(|_ctx| std::thread::current().id()).unwrap();
        assert_eq!(ids1, ids2, "runs landed on different threads");
        assert_eq!(ids1, before, "jobs ran off-pool");
        assert_eq!(pool.thread_ids(), before, "pool respawned threads");
    }

    #[test]
    fn pool_runs_are_isolated() {
        // Messages from run 1 must not leak into run 2's mailboxes.
        let mut pool = WorkerPool::new(2);
        pool.run(|ctx| {
            if ctx.tid() == 0 {
                // Never received; peer may already be done (send may error),
                // either way the message must die with this run's mailboxes.
                let _ = ctx.send(1, 9, &Num(1));
            }
        })
        .unwrap();
        let r = pool
            .run(|ctx| {
                if ctx.tid() == 1 {
                    matches!(
                        ctx.recv_timeout(Duration::from_millis(50)),
                        Err(CommError::Timeout | CommError::Disconnected)
                    )
                } else {
                    true
                }
            })
            .unwrap();
        assert!(r[1], "stale message crossed runs");
    }

    #[test]
    fn pool_survives_a_panicked_run() {
        let mut pool = WorkerPool::new(2);
        let err = pool
            .run(|ctx| {
                if ctx.tid() == 1 {
                    panic!("boom");
                }
            })
            .unwrap_err();
        let FarmError::TaskPanicked { tid, message } = err;
        assert_eq!(tid, 1);
        assert!(message.contains("boom"));
        // The same pool serves the next run on the same threads.
        let ok = pool.run(|ctx| ctx.tid()).unwrap();
        assert_eq!(ok, vec![0, 1]);
    }

    #[test]
    fn lowest_panicking_tid_wins() {
        let err = run_farm(4, |ctx| {
            if ctx.tid() >= 2 {
                panic!("task {} down", ctx.tid());
            }
        })
        .unwrap_err();
        let FarmError::TaskPanicked { tid, message } = err;
        assert_eq!(tid, 2);
        assert!(message.contains("task 2 down"), "got: {message:?}");
    }

    #[test]
    fn pool_replaces_dead_threads() {
        let mut pool = WorkerPool::new(3);
        let before = pool.thread_ids();
        pool.kill_thread(1);
        assert_eq!(pool.respawned_threads(), 0, "healing is lazy");
        // The next run heals the pool: task 1 lands on a fresh thread,
        // the survivors keep theirs, and the farm is whole again.
        let ids = pool.run(|_ctx| std::thread::current().id()).unwrap();
        assert_eq!(pool.respawned_threads(), 1);
        assert_eq!(ids[0], before[0]);
        assert_eq!(ids[2], before[2]);
        assert_ne!(ids[1], before[1], "dead thread was not replaced");
        // Subsequent runs reuse the healed thread.
        let again = pool.run(|_ctx| std::thread::current().id()).unwrap();
        assert_eq!(again, ids);
        assert_eq!(pool.respawned_threads(), 1);
    }

    #[test]
    fn fault_plan_kills_chosen_task_on_chosen_receive() {
        let mut pool = WorkerPool::new(2);
        pool.set_fault_plan(FaultPlan::kill(1, 2));
        let outcomes = pool.run_collect(|ctx| {
            if ctx.tid() == 0 {
                ctx.send(1, 1, &Num(1)).unwrap();
                ctx.send(1, 1, &Num(2)).unwrap();
                0
            } else {
                let a = ctx.recv_timeout(T).unwrap().decode::<Num>().unwrap().0;
                // The fault fires inside this second receive.
                let b = ctx.recv_timeout(T).unwrap().decode::<Num>().unwrap().0;
                a + b
            }
        });
        assert!(matches!(outcomes[0], TaskOutcome::Done(0)));
        match &outcomes[1] {
            TaskOutcome::Panicked(msg) => assert!(msg.contains("fault injection"), "{msg:?}"),
            other => panic!("task 1 survived its fault: {other:?}"),
        }
        // The plan is one-shot: the next run is fault-free.
        let clean = pool.run(|ctx| ctx.tid()).unwrap();
        assert_eq!(clean, vec![0, 1]);
    }

    #[test]
    fn fault_plan_delays_chosen_task() {
        let mut pool = WorkerPool::new(2);
        pool.set_fault_plan(FaultPlan::delay(1, 1, Duration::from_millis(150)));
        let outcomes = pool.run_collect(|ctx| {
            if ctx.tid() == 0 {
                ctx.send(1, 1, &Num(7)).unwrap();
                Duration::ZERO
            } else {
                let start = std::time::Instant::now();
                ctx.recv_timeout(T).unwrap();
                start.elapsed()
            }
        });
        match outcomes[1] {
            TaskOutcome::Done(elapsed) => assert!(
                elapsed >= Duration::from_millis(150),
                "delay fault did not stall the receive: {elapsed:?}"
            ),
            ref other => panic!("task 1 failed: {other:?}"),
        }
    }

    #[test]
    fn run_collect_reports_survivors_alongside_panics() {
        let outcomes = WorkerPool::new(3).run_collect(|ctx| {
            if ctx.tid() == 1 {
                panic!("down");
            }
            ctx.tid() * 10
        });
        assert!(matches!(outcomes[0], TaskOutcome::Done(0)));
        assert!(matches!(outcomes[1], TaskOutcome::Panicked(_)));
        assert!(matches!(outcomes[2], TaskOutcome::Done(20)));
    }

    #[test]
    fn respawn_revives_a_killed_task_mid_run() {
        let mut pool = WorkerPool::new(2);
        pool.set_fault_plan(FaultPlan::kill(1, 1));
        let outcomes = pool.run_collect(|ctx| {
            if ctx.tid() == 0 {
                // The first incarnation of task 1 dies inside this delivery.
                ctx.send(1, 1, &Num(21)).unwrap();
                assert!(matches!(
                    ctx.recv_timeout(Duration::from_millis(300)),
                    Err(CommError::Timeout)
                ));
                // The second incarnation is fault-free and answers.
                assert!(ctx.respawn(1));
                ctx.send(1, 1, &Num(21)).unwrap();
                ctx.recv_timeout(T).unwrap().decode::<Num>().unwrap().0
            } else {
                let n = ctx.recv_timeout(T).unwrap().decode::<Num>().unwrap().0;
                ctx.send(0, 2, &Num(n * 2)).unwrap();
                n
            }
        });
        match &outcomes[0] {
            TaskOutcome::Done(n) => assert_eq!(*n, 42),
            other => panic!("master failed: {other:?}"),
        }
        // The reborn incarnation's completion supersedes the panic record.
        match &outcomes[1] {
            TaskOutcome::Done(n) => assert_eq!(*n, 21),
            other => panic!("reborn task not recorded: {other:?}"),
        }
        // The panic was task-level: no thread died, none was rebuilt.
        assert_eq!(pool.respawned_threads(), 0);
    }

    #[test]
    fn kill_repeatedly_downs_every_incarnation() {
        let mut pool = WorkerPool::new(2);
        pool.set_fault_plan(FaultPlan::kill_repeatedly(1, 1));
        let outcomes = pool.run_collect(|ctx| {
            if ctx.tid() == 0 {
                ctx.send(1, 1, &Num(1)).unwrap();
                for _ in 0..2 {
                    assert!(matches!(
                        ctx.recv_timeout(Duration::from_millis(200)),
                        Err(CommError::Timeout)
                    ));
                    assert!(ctx.respawn(1));
                    ctx.send(1, 1, &Num(1)).unwrap();
                }
                assert!(matches!(
                    ctx.recv_timeout(Duration::from_millis(200)),
                    Err(CommError::Timeout)
                ));
                0
            } else {
                // Every incarnation dies inside its first delivery.
                let n = ctx.recv_timeout(T).unwrap().decode::<Num>().unwrap().0;
                ctx.send(0, 2, &Num(n)).unwrap();
                n
            }
        });
        assert!(matches!(outcomes[0], TaskOutcome::Done(0)));
        match &outcomes[1] {
            TaskOutcome::Panicked(msg) => assert!(msg.contains("fault injection"), "{msg:?}"),
            other => panic!("kill_repeatedly let an incarnation live: {other:?}"),
        }
    }

    #[test]
    fn notify_orphans_wakes_superseded_incarnations() {
        let mut pool = WorkerPool::new(2);
        let outcomes = pool.run_collect(|ctx| {
            if ctx.tid() == 0 {
                ctx.send(1, 1, &Num(1)).unwrap(); // first incarnation consumes this
                ctx.recv_timeout(T).unwrap(); // ack: it is now parked in recv()
                assert!(ctx.respawn(1)); // supersede it while it still lives
                ctx.send(1, 9, &Num(0)).unwrap(); // reborn incarnation exits on tag 9
                ctx.notify_orphans(9); // ...and so must the orphan
                0
            } else {
                let mut seen = 0;
                loop {
                    // Blocking receive on purpose: without the nudge the
                    // orphan would wedge the run forever.
                    let env = ctx.recv().unwrap();
                    if env.tag == 9 {
                        return seen;
                    }
                    seen += 1;
                    let _ = ctx.send(0, 2, &Num(seen));
                }
            }
        });
        assert!(matches!(outcomes[0], TaskOutcome::Done(0)));
        // Both incarnations exited cleanly (3 completions were collected:
        // 2 dispatched + 1 respawned); whichever lands last wins the slot.
        match outcomes[1] {
            TaskOutcome::Done(n) => assert!(n <= 1),
            ref other => panic!("an incarnation failed: {other:?}"),
        }
    }

    #[test]
    fn comm_stats_count_sends_receives_and_bytes() {
        let mut pool = WorkerPool::new(2);
        assert!(pool.last_comm_stats().is_empty(), "stats before any run");
        pool.run(|ctx| {
            if ctx.tid() == 0 {
                ctx.send(1, 1, &Num(3)).unwrap(); // 8 payload bytes
                ctx.send(1, 1, &Num(4)).unwrap();
                ctx.recv_timeout(T).unwrap();
            } else {
                ctx.recv_timeout(T).unwrap();
                ctx.recv_timeout(T).unwrap();
                ctx.send(0, 2, &Num(7)).unwrap();
            }
        })
        .unwrap();
        let stats = pool.last_comm_stats().to_vec();
        assert_eq!(stats[0].sent, 2);
        assert_eq!(stats[0].received, 1);
        assert_eq!(stats[0].bytes_sent, 16);
        assert_eq!(stats[0].bytes_received, 8);
        assert_eq!(stats[1].sent, 1);
        assert_eq!(stats[1].received, 2);
        assert_eq!(stats[1].bytes_sent, 8);
        assert_eq!(stats[1].bytes_received, 16);
        // A later run replaces the totals rather than accumulating.
        pool.run(|_ctx| ()).unwrap();
        let quiet = pool.last_comm_stats();
        assert_eq!(quiet[0], CommStats::default());
        assert_eq!(quiet[1], CommStats::default());
    }

    #[test]
    fn tags_discriminate_protocols() {
        let r = run_farm(2, |ctx| {
            if ctx.tid() == 0 {
                ctx.send(1, 10, &Num(1)).unwrap();
                ctx.send(1, 20, &Num(2)).unwrap();
                0
            } else {
                let a = ctx.recv_timeout(T).unwrap();
                let b = ctx.recv_timeout(T).unwrap();
                assert_eq!((a.tag, b.tag), (10, 20));
                (a.decode::<Num>().unwrap().0 * 100 + b.decode::<Num>().unwrap().0) as usize
            }
        })
        .unwrap();
        assert_eq!(r[1], 102);
    }
}
