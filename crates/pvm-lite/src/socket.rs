//! Socket transports: the farm protocol across process boundaries.
//!
//! Two endpoint roles implement [`Transport`](crate::Transport):
//!
//! * [`SocketTransport`] — a *slave* endpoint in its own process. It
//!   connects to the master's listener, performs the handshake below, and
//!   then exchanges [`Envelope`]s as length-prefixed frames
//!   ([`crate::frame`]) over the stream. A background reader thread feeds
//!   an in-tree channel so timed receives work exactly like the
//!   in-process mailboxes.
//! * [`SocketHub`] — the *master* endpoint: a listener owning one *slot*
//!   per slave task. Incoming connections are handshaken and installed
//!   into slots; each slot carries a monotonically increasing
//!   *connection generation* so a superseded connection's leftover frames
//!   can be fenced off deterministically.
//!
//! # Handshake
//!
//! The connecting slave sends one `HELLO` frame carrying the slot it
//! wants (or "any"); the hub answers with a `WELCOME` frame carrying the
//! assigned task id and the farm size, or closes the connection when no
//! slot is free. Task ids follow the farm convention: the hub is task 0,
//! slots `k` serve tasks `k + 1`.
//!
//! # Reconnect, resurrection and fencing
//!
//! A slave process that loses its stream reconnects with backoff and is
//! handed a slot again (its old one if free). On the hub side the
//! engine's supervision drives [`Transport::respawn`]: the hub *fences*
//! the slot's current connection (its generation is retired, its
//! not-yet-consumed frames dropped and counted) and waits for a fresh
//! connection to land in the slot. The master then re-sends
//! `ProblemMsg`/`SeedMsg`/`AssignMsg` exactly as it does for an
//! in-process rebirth — the epoch tags on assignments and reports (PR 4)
//! keep stale *reports* out even when the transport delivered them
//! before the fence.
//!
//! [`Transport::respawn`]: crate::Transport::respawn

use crate::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use crate::codec::{CodecError, PackBuffer, UnpackBuffer, Wire};
use crate::farm::{CommCell, CommError, CommStats, Envelope, TaskId};
use crate::frame::{read_frame, write_frame, FrameError, FRAME_HEADER_LEN};
use crate::netfault::{NetFaultAction, NetFaultState};
use crate::transport::Transport;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Handshake tags live outside the protocol's tag space (the engine's
/// tags are small integers).
const TAG_HELLO: u32 = 0xFFFF_FF01;
const TAG_WELCOME: u32 = 0xFFFF_FF02;

/// How often blocked waiters (accept loop, respawn, ready-wait) poll
/// shared state.
const POLL: Duration = Duration::from_millis(10);

/// A parsed `unix:PATH` / `tcp:HOST:PORT` transport address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket at the given filesystem path.
    Unix(PathBuf),
    /// A TCP socket at `host:port`.
    Tcp(String),
}

impl Endpoint {
    /// Parse an address argument. Accepted forms, with specific errors
    /// for everything else (mirroring the CLI's fault-spec hardening):
    ///
    /// * `unix:PATH` — Unix-domain socket at PATH.
    /// * `tcp:HOST:PORT` — TCP, with a numeric non-zero port.
    pub fn parse(raw: &str) -> Result<Endpoint, String> {
        if let Some(path) = raw.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(format!(
                    "address {raw:?} has an empty unix socket path (want unix:PATH)"
                ));
            }
            return Ok(Endpoint::Unix(PathBuf::from(path)));
        }
        if let Some(addr) = raw.strip_prefix("tcp:") {
            let Some((host, port)) = addr.rsplit_once(':') else {
                return Err(format!(
                    "address {raw:?} is missing a port (want tcp:HOST:PORT)"
                ));
            };
            if host.is_empty() {
                return Err(format!(
                    "address {raw:?} has an empty host (want tcp:HOST:PORT)"
                ));
            }
            match port.parse::<u16>() {
                Ok(0) => Err(format!("address {raw:?} has port 0 (want 1..=65535)")),
                Ok(_) => Ok(Endpoint::Tcp(addr.to_string())),
                Err(_) => Err(format!(
                    "address {raw:?} has a malformed port {port:?} (want a number in 1..=65535)"
                )),
            }
        } else {
            Err(format!(
                "malformed address {raw:?} (want unix:PATH or tcp:HOST:PORT)"
            ))
        }
    }

    fn connect(&self) -> io::Result<Stream> {
        match self {
            Endpoint::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(Stream::Tcp),
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// A connected byte stream of either flavour.
#[derive(Debug)]
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(timeout),
            Stream::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// Close both directions; unblocks a peer (or our own reader thread)
    /// parked in a read.
    fn shutdown(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Socket-layer failures (connect/handshake time).
#[derive(Debug)]
pub enum SocketError {
    /// The underlying socket operation failed.
    Io(io::Error),
    /// The peer broke the handshake protocol.
    Handshake(String),
    /// The hub had no free slot for this slave.
    Rejected,
    /// The endpoint is already served by a live listener. Binding over it
    /// would destroy that server's endpoint, so the bind is refused.
    AddrInUse {
        /// The contested endpoint, displayable.
        endpoint: String,
    },
    /// [`SocketTransport::connect_with_retry`] exhausted its total
    /// deadline without a listener ever answering. The caller is spinning
    /// against a dead address and must stop.
    Unreachable {
        /// The dead endpoint, displayable.
        endpoint: String,
        /// How many connect attempts were made before giving up.
        attempts: u64,
        /// The total deadline that lapsed.
        patience: Duration,
    },
}

impl fmt::Display for SocketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocketError::Io(e) => write!(f, "socket i/o failed: {e}"),
            SocketError::Handshake(detail) => write!(f, "handshake failed: {detail}"),
            SocketError::Rejected => write!(f, "hub rejected the connection (no free slot)"),
            SocketError::AddrInUse { endpoint } => {
                write!(f, "{endpoint} is already served by a live listener")
            }
            SocketError::Unreachable {
                endpoint,
                attempts,
                patience,
            } => write!(
                f,
                "no listener at {endpoint} answered within {patience:?} \
                 ({attempts} connect attempts)"
            ),
        }
    }
}

impl std::error::Error for SocketError {}

impl From<io::Error> for SocketError {
    fn from(e: io::Error) -> Self {
        SocketError::Io(e)
    }
}

impl From<FrameError> for SocketError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => SocketError::Io(io),
            other => SocketError::Handshake(other.to_string()),
        }
    }
}

/// `HELLO`: the slave's opening claim. `want == u64::MAX` means "any
/// slot"; otherwise it names the 0-based slot of a previous incarnation
/// so a restarted slave process reclaims its identity.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Hello {
    want: u64,
    /// The connecting process's reconnect attempt counter (diagnostic).
    attempt: u64,
}

impl Wire for Hello {
    fn pack(&self, buf: &mut PackBuffer) {
        buf.put_u64(self.want);
        buf.put_u64(self.attempt);
    }
    fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
        Ok(Hello {
            want: buf.get_u64()?,
            attempt: buf.get_u64()?,
        })
    }
}

/// `WELCOME`: the hub's answer — the assigned task id, the farm size and
/// the slot's connection generation (diagnostic; fencing is hub-side).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Welcome {
    tid: u64,
    ntasks: u64,
    generation: u64,
}

impl Wire for Welcome {
    fn pack(&self, buf: &mut PackBuffer) {
        buf.put_u64(self.tid);
        buf.put_u64(self.ntasks);
        buf.put_u64(self.generation);
    }
    fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
        Ok(Welcome {
            tid: buf.get_u64()?,
            ntasks: buf.get_u64()?,
            generation: buf.get_u64()?,
        })
    }
}

/// Send one data frame through an optional fault injector. Without a
/// fault (or when this frame is not the plan's victim) this is exactly
/// [`write_frame`]. A fired fault mangles only this frame: `Drop` writes
/// nothing, `Duplicate` writes the frame twice, `Truncate` writes half
/// the frame's bytes and shuts the stream down, `Corrupt` flips a
/// payload bit under the original checksum, `Delay` sleeps first. Every
/// branch validates the frame exactly as a clean send would, so a fault
/// never masks an oversized payload or a bad sender id.
fn send_frame_faulty(
    stream: &mut Stream,
    fault: Option<&NetFaultState>,
    from: TaskId,
    tag: u32,
    payload: &[u8],
) -> Result<(), FrameError> {
    use crate::frame::encode_frame;
    let Some(action) = fault.and_then(NetFaultState::on_send) else {
        return write_frame(stream, from, tag, payload);
    };
    match action {
        NetFaultAction::Drop => encode_frame(from, tag, payload).map(drop),
        NetFaultAction::Duplicate => {
            write_frame(stream, from, tag, payload)?;
            write_frame(stream, from, tag, payload)
        }
        NetFaultAction::Truncate => {
            let wire = encode_frame(from, tag, payload)?;
            stream.write_all(&wire[..wire.len() / 2])?;
            let _ = stream.flush();
            // Cut the stream here so the peer observes a mid-frame death
            // rather than blocking on the missing tail.
            stream.shutdown();
            Ok(())
        }
        NetFaultAction::Corrupt => {
            let mut wire = encode_frame(from, tag, payload)?;
            // Flip a payload bit but keep the checksum trailer computed
            // over the original bytes: the receiver must detect this. An
            // empty payload gets a trailer bit flipped — same detection.
            let at = if payload.is_empty() {
                wire.len() - 1
            } else {
                FRAME_HEADER_LEN
            };
            wire[at] ^= 0x01;
            stream.write_all(&wire)?;
            stream.flush()?;
            Ok(())
        }
        NetFaultAction::Delay(d) => {
            std::thread::sleep(d);
            write_frame(stream, from, tag, payload)
        }
    }
}

// ---------------------------------------------------------------------------
// Slave side
// ---------------------------------------------------------------------------

/// A slave's socket endpoint: one stream to the hub, envelopes framed on
/// the wire, received frames pumped into a channel by a reader thread so
/// [`Transport::recv_timeout`] has in-process semantics.
pub struct SocketTransport {
    tid: TaskId,
    ntasks: usize,
    generation: u64,
    writer: Mutex<Stream>,
    /// Kept so `Drop` can unblock the reader thread.
    stream: Stream,
    inbox: Receiver<Envelope>,
    reader: Option<std::thread::JoinHandle<()>>,
    comm: Arc<CommCell>,
    /// Armed send-path fault plan (tests and `--net-fault`).
    fault: Option<Arc<NetFaultState>>,
    /// Frames this endpoint received damaged and dropped.
    corrupt_drops: Arc<AtomicU64>,
}

impl SocketTransport {
    /// Connect to a hub and handshake. `want` names the slot of a
    /// previous incarnation (`None` = any free slot).
    pub fn connect(
        endpoint: &Endpoint,
        want: Option<TaskId>,
        attempt: u64,
    ) -> Result<SocketTransport, SocketError> {
        SocketTransport::connect_with(endpoint, want, attempt, None)
    }

    /// [`connect`](SocketTransport::connect) with a send-path fault
    /// injector. The [`NetFaultState`] is shared by reference so its
    /// frame counter spans this connection and any later reconnects;
    /// handshake frames are not counted.
    pub fn connect_with(
        endpoint: &Endpoint,
        want: Option<TaskId>,
        attempt: u64,
        fault: Option<Arc<NetFaultState>>,
    ) -> Result<SocketTransport, SocketError> {
        let mut stream = endpoint.connect()?;
        let comm = Arc::new(CommCell::default());
        let hello = Hello {
            want: want.map_or(u64::MAX, |tid| tid as u64),
            attempt,
        };
        write_frame(&mut stream, 0, TAG_HELLO, &hello.to_bytes())?;
        let Some(env) = read_frame(&mut stream).map_err(|e| match e {
            crate::frame::FrameError::Io(e) => SocketError::Io(e),
            other => SocketError::Handshake(other.to_string()),
        })?
        else {
            // The hub closing the stream instead of welcoming us is the
            // "no free slot" signal.
            return Err(SocketError::Rejected);
        };
        if env.tag != TAG_WELCOME {
            return Err(SocketError::Handshake(format!(
                "expected WELCOME, got tag {:#x}",
                env.tag
            )));
        }
        let welcome: Welcome = env
            .decode()
            .map_err(|e| SocketError::Handshake(format!("undecodable WELCOME: {e:?}")))?;
        let tid = welcome.tid as TaskId;
        let ntasks = welcome.ntasks as usize;
        if tid == 0 || tid >= ntasks {
            return Err(SocketError::Handshake(format!(
                "WELCOME assigned task {tid} outside 1..{ntasks}"
            )));
        }

        let (tx, rx) = unbounded::<Envelope>();
        let corrupt_drops = Arc::new(AtomicU64::new(0));
        let reader_stream = stream.try_clone()?;
        let reader_comm = Arc::clone(&comm);
        let reader_corrupt = Arc::clone(&corrupt_drops);
        let reader = std::thread::Builder::new()
            .name(format!("mkp-sock-rx-{tid}"))
            .spawn(move || pump_frames(reader_stream, tx, reader_comm, reader_corrupt))
            .expect("spawn socket reader");
        let writer = Mutex::new(stream.try_clone()?);
        Ok(SocketTransport {
            tid,
            ntasks,
            generation: welcome.generation,
            writer,
            stream,
            inbox: rx,
            reader: Some(reader),
            comm,
            fault,
            corrupt_drops,
        })
    }

    /// [`connect_with`](SocketTransport::connect_with) under a *total*
    /// deadline: retry failed connects with jittered backoff until
    /// `patience` lapses, then give up with [`SocketError::Unreachable`]
    /// instead of spinning forever against a dead address. A
    /// [`SocketError::Rejected`] (the hub answered: no free slot) is a
    /// protocol verdict, not unreachability, and returns immediately.
    /// On success also returns how many connect attempts it took.
    pub fn connect_with_retry(
        endpoint: &Endpoint,
        want: Option<TaskId>,
        first_attempt: u64,
        patience: Duration,
        fault: Option<Arc<NetFaultState>>,
    ) -> Result<(SocketTransport, u64), SocketError> {
        let deadline = Instant::now().checked_add(patience);
        let mut attempts: u64 = 0;
        loop {
            match SocketTransport::connect_with(
                endpoint,
                want,
                first_attempt + attempts,
                fault.clone(),
            ) {
                Ok(t) => return Ok((t, attempts + 1)),
                Err(SocketError::Rejected) => return Err(SocketError::Rejected),
                Err(_) => {
                    attempts += 1;
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        return Err(SocketError::Unreachable {
                            endpoint: endpoint.to_string(),
                            attempts,
                            patience,
                        });
                    }
                    // Backoff grows from 10 ms towards 500 ms with a
                    // deterministic per-attempt jitter, so a herd of
                    // orphans does not retry in lockstep.
                    let base = 10u64.saturating_mul(1 << attempts.min(6));
                    let jitter = attempts.wrapping_mul(0x9E37_79B9) % 23;
                    std::thread::sleep(Duration::from_millis(base.min(500) + jitter));
                }
            }
        }
    }

    /// The slot generation the hub assigned this connection.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Frames this endpoint received damaged (checksum mismatch) and
    /// dropped without desynchronising the stream.
    pub fn corrupt_drops(&self) -> u64 {
        self.corrupt_drops.load(Ordering::Relaxed)
    }
}

/// Reader-thread body: frames off the stream into the inbox, counting at
/// the transport boundary; exits on EOF or any stream error (dropping the
/// sender disconnects the inbox, which the owner observes as
/// [`CommError::Disconnected`]). A frame that arrives damaged is dropped
/// and counted — the checksummed framing keeps the stream synchronised,
/// so one corrupt frame never kills the connection.
fn pump_frames(
    mut stream: Stream,
    tx: Sender<Envelope>,
    comm: Arc<CommCell>,
    corrupt_drops: Arc<AtomicU64>,
) {
    loop {
        match read_frame(&mut stream) {
            Ok(Some(env)) => {
                comm.count_received(env.data.len() as u64);
                if tx.send(env).is_err() {
                    break; // owner gone
                }
            }
            Err(FrameError::Corrupt) => {
                corrupt_drops.fetch_add(1, Ordering::Relaxed);
            }
            Ok(None) | Err(_) => break,
        }
    }
}

impl Transport for SocketTransport {
    fn tid(&self) -> TaskId {
        self.tid
    }

    fn ntasks(&self) -> usize {
        self.ntasks
    }

    fn send_bytes(&self, to: TaskId, tag: u32, data: Vec<u8>) -> Result<(), CommError> {
        assert!(to < self.ntasks, "task id {to} out of range");
        // The stream topology is a star: every frame physically goes to
        // the hub, which is also the only peer the slave protocol
        // addresses.
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        send_frame_faulty(&mut writer, self.fault.as_deref(), self.tid, tag, &data)
            .map_err(|e| match e {
                // An unencodable message is rejected outright; nothing
                // reached the wire and the link is still good.
                FrameError::Oversized { len } => CommError::Oversized { len },
                _ => CommError::PeerGone { to },
            })
            .inspect(|()| self.comm.count_sent(data.len() as u64))
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, CommError> {
        self.inbox.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => CommError::Timeout,
            RecvTimeoutError::Disconnected => CommError::Disconnected,
        })
    }

    fn try_recv(&self) -> Option<Envelope> {
        self.inbox.try_recv().ok()
    }

    fn comm_stats(&self) -> CommStats {
        self.comm.snapshot()
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        self.stream.shutdown();
        if let Some(handle) = self.reader.take() {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Hub (master) side
// ---------------------------------------------------------------------------

/// One remote slave's connection slot.
struct Slot {
    /// Generation of the installed connection; 0 = never connected.
    generation: u64,
    /// Whether the installed connection is believed live.
    live: bool,
    /// Write half of the installed connection.
    writer: Option<Stream>,
    /// Generations `<=` this are fenced: their buffered frames drop.
    fenced: u64,
    /// Generation of the last successful master→slot send; lets
    /// [`respawn`](Transport::respawn) tell a fresh, never-addressed
    /// connection from the straggler it is meant to replace.
    last_sent: u64,
}

/// Transport counters specific to the socket hub.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HubStats {
    /// Connections accepted beyond each slot's first (slave rebirths).
    pub reconnects: u64,
    /// Frames dropped because their connection generation was fenced.
    pub fenced_drops: u64,
    /// Frames that arrived damaged (checksum mismatch) and were dropped.
    pub corrupt_drops: u64,
}

struct HubShared {
    slots: Mutex<Vec<Slot>>,
    comm: CommCell,
    reconnects: AtomicU64,
    fenced_drops: AtomicU64,
    corrupt_drops: AtomicU64,
    shutdown: AtomicBool,
    /// Armed send-path fault plan (tests and `--net-fault`).
    fault: Option<Arc<NetFaultState>>,
}

impl HubShared {
    fn lock_slots(&self) -> MutexGuard<'_, Vec<Slot>> {
        self.slots.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The master's socket endpoint: listener, slots, merged inbox.
///
/// Implements [`Transport`] with `tid() == 0`; sends route to the
/// addressed slot's installed connection, receives pull from the merged
/// inbox in arrival order (frames from fenced generations are dropped and
/// counted). [`Transport::respawn`] implements supervision as described
/// in the module docs.
pub struct SocketHub {
    shared: Arc<HubShared>,
    inbox: Receiver<(u64, Envelope)>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    /// Patience for a replacement connection inside `respawn`.
    reconnect_patience: Duration,
    /// Unix listener path, unlinked on drop.
    unlink: Option<PathBuf>,
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            Listener::Unix(l) => l.set_nonblocking(nb),
        }
    }
}

/// Bind a listener on `endpoint`. For Unix endpoints an existing socket
/// file is *probed* before it is reclaimed: if a listener answers, the
/// path belongs to a live server and the bind is refused with
/// [`SocketError::AddrInUse`] — unconditionally unlinking would destroy
/// that server's endpoint while its clients still point at the path. Only
/// a genuinely stale file (connect refused: its owner is gone) is
/// removed. TCP gets the same behaviour for free from the OS.
///
/// Returns the listener plus the path to unlink on shutdown.
fn bind_listener(endpoint: &Endpoint) -> Result<(Listener, Option<PathBuf>), SocketError> {
    match endpoint {
        Endpoint::Tcp(addr) => Ok((Listener::Tcp(TcpListener::bind(addr.as_str())?), None)),
        Endpoint::Unix(path) => {
            if path.exists() {
                match UnixStream::connect(path) {
                    Ok(probe) => {
                        // A live listener accepted the probe; back off. The
                        // probe connection is dropped immediately — the
                        // server sees a clean EOF and discards it.
                        drop(probe);
                        return Err(SocketError::AddrInUse {
                            endpoint: endpoint.to_string(),
                        });
                    }
                    Err(_) => {
                        // Nobody answers: a leftover from a crashed run.
                        let _ = std::fs::remove_file(path);
                    }
                }
            }
            let l = UnixListener::bind(path)?;
            Ok((Listener::Unix(l), Some(path.clone())))
        }
    }
}

impl SocketHub {
    /// Bind a hub for `p` slave slots. `reconnect_patience` bounds how
    /// long [`Transport::respawn`] waits for a replacement connection.
    /// Refuses to displace a live listener on the same endpoint
    /// ([`SocketError::AddrInUse`]); only stale Unix socket files are
    /// reclaimed.
    pub fn bind(
        endpoint: &Endpoint,
        p: usize,
        reconnect_patience: Duration,
    ) -> Result<SocketHub, SocketError> {
        SocketHub::bind_with(endpoint, p, reconnect_patience, None)
    }

    /// [`bind`](SocketHub::bind) with a send-path fault injector shared
    /// across every slot (frames are counted in hub send order).
    pub fn bind_with(
        endpoint: &Endpoint,
        p: usize,
        reconnect_patience: Duration,
        fault: Option<Arc<NetFaultState>>,
    ) -> Result<SocketHub, SocketError> {
        assert!(p >= 1, "a hub needs at least one slave slot");
        let (listener, unlink) = bind_listener(endpoint)?;
        // Nonblocking accept + poll: lets the accept loop observe the
        // shutdown flag (closing a listener does not portably unblock a
        // blocking accept).
        listener.set_nonblocking(true)?;

        let shared = Arc::new(HubShared {
            slots: Mutex::new(
                (0..p)
                    .map(|_| Slot {
                        generation: 0,
                        live: false,
                        writer: None,
                        fenced: 0,
                        last_sent: 0,
                    })
                    .collect(),
            ),
            comm: CommCell::default(),
            reconnects: AtomicU64::new(0),
            fenced_drops: AtomicU64::new(0),
            corrupt_drops: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            fault,
        });
        let (inbox_tx, inbox_rx) = unbounded::<(u64, Envelope)>();
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("mkp-hub-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared, inbox_tx, p))
            .expect("spawn hub accept thread");
        Ok(SocketHub {
            shared,
            inbox: inbox_rx,
            accept_thread: Some(accept_thread),
            reconnect_patience,
            unlink,
        })
    }

    /// Block until every slot has a live connection, or the deadline
    /// passes. Returns how many slots are connected.
    pub fn wait_ready(&self, timeout: Duration) -> usize {
        let deadline = Instant::now().checked_add(timeout);
        loop {
            let live = self.shared.lock_slots().iter().filter(|s| s.live).count();
            if live == self.nslots() {
                return live;
            }
            match deadline {
                Some(d) if Instant::now() >= d => return live,
                _ => std::thread::sleep(POLL),
            }
        }
    }

    /// Number of slave slots.
    pub fn nslots(&self) -> usize {
        self.shared.lock_slots().len()
    }

    /// Hub-specific transport counters (reconnects, fenced drops).
    pub fn hub_stats(&self) -> HubStats {
        HubStats {
            reconnects: self.shared.reconnects.load(Ordering::Relaxed),
            fenced_drops: self.shared.fenced_drops.load(Ordering::Relaxed),
            corrupt_drops: self.shared.corrupt_drops.load(Ordering::Relaxed),
        }
    }
}

/// Accept-thread body: handshake every incoming connection into a slot.
fn accept_loop(
    listener: Listener,
    shared: Arc<HubShared>,
    inbox_tx: Sender<(u64, Envelope)>,
    p: usize,
) {
    while !shared.shutdown.load(Ordering::Relaxed) {
        let mut stream = match listener.accept() {
            Ok(s) => s,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
                continue;
            }
            Err(_) => break,
        };
        // Handshake inline: HELLO must already be in flight (the client
        // sends it immediately after connect), so this cannot stall the
        // accept loop for long against a well-behaved peer.
        let hello: Hello = match read_frame(&mut stream) {
            Ok(Some(env)) if env.tag == TAG_HELLO => match env.decode() {
                Ok(h) => h,
                Err(_) => continue, // garbage peer: drop it
            },
            _ => continue,
        };
        let mut slots = shared.lock_slots();
        let want = usize::try_from(hello.want).ok().filter(|&w| w < p);
        let free = |k: usize, slots: &Vec<Slot>| !slots[k].live;
        let slot_k = match want {
            Some(w) if free(w, &slots) => Some(w),
            _ => (0..p).find(|&k| free(k, &slots)),
        };
        let Some(k) = slot_k else {
            drop(slots);
            stream.shutdown(); // reject: every slot is occupied
            continue;
        };
        let generation = slots[k].generation + 1;
        let welcome = Welcome {
            tid: (k + 1) as u64,
            ntasks: (p + 1) as u64,
            generation,
        };
        if write_frame(&mut stream, 0, TAG_WELCOME, &welcome.to_bytes()).is_err() {
            continue; // peer vanished mid-handshake
        }
        let Ok(read_half) = stream.try_clone() else {
            continue;
        };
        slots[k].generation = generation;
        slots[k].live = true;
        slots[k].writer = Some(stream);
        if generation > 1 {
            shared.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        drop(slots);

        let conn_shared = Arc::clone(&shared);
        let conn_tx = inbox_tx.clone();
        // One reader thread per connection; it marks the slot dead when
        // the stream ends, provided the slot still holds its generation.
        let _ = std::thread::Builder::new()
            .name(format!("mkp-hub-rx-{}", k + 1))
            .spawn(move || {
                let mut stream = read_half;
                loop {
                    match read_frame(&mut stream) {
                        Ok(Some(mut env)) => {
                            // Trust the slot, not the wire, for the sender id.
                            env.from = k + 1;
                            if conn_tx.send((generation, env)).is_err() {
                                break;
                            }
                        }
                        // A damaged frame is dropped and counted; the
                        // checksummed framing keeps the stream in sync.
                        Err(FrameError::Corrupt) => {
                            conn_shared.corrupt_drops.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(None) | Err(_) => break,
                    }
                }
                let mut slots = conn_shared.lock_slots();
                if slots[k].generation == generation {
                    slots[k].live = false;
                    slots[k].writer = None;
                }
            });
    }
}

impl Transport for SocketHub {
    fn tid(&self) -> TaskId {
        0
    }

    fn ntasks(&self) -> usize {
        self.nslots() + 1
    }

    fn send_bytes(&self, to: TaskId, tag: u32, data: Vec<u8>) -> Result<(), CommError> {
        assert!(
            to >= 1 && to <= self.nslots(),
            "task id {to} out of range for the hub"
        );
        let k = to - 1;
        let mut slots = self.shared.lock_slots();
        let slot = &mut slots[k];
        let Some(writer) = slot.writer.as_mut().filter(|_| slot.live) else {
            return Err(CommError::PeerGone { to });
        };
        match send_frame_faulty(writer, self.shared.fault.as_deref(), 0, tag, &data) {
            Ok(()) => {
                slot.last_sent = slot.generation;
                self.shared.comm.count_sent(data.len() as u64);
                Ok(())
            }
            // The message was rejected before any byte was written: keep
            // the connection — only this send failed, not the peer.
            Err(FrameError::Oversized { len }) => Err(CommError::Oversized { len }),
            Err(_) => {
                slot.live = false;
                slot.writer = None;
                Err(CommError::PeerGone { to })
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, CommError> {
        let deadline = Instant::now().checked_add(timeout);
        loop {
            let remaining = match deadline {
                None => Duration::MAX,
                Some(deadline) => deadline.saturating_duration_since(Instant::now()),
            };
            let (generation, env) = self.inbox.recv_timeout(remaining).map_err(|e| match e {
                RecvTimeoutError::Timeout => CommError::Timeout,
                RecvTimeoutError::Disconnected => CommError::Disconnected,
            })?;
            let fenced = {
                let slots = self.shared.lock_slots();
                generation <= slots[env.from - 1].fenced
            };
            if fenced {
                self.shared.fenced_drops.fetch_add(1, Ordering::Relaxed);
                continue; // a superseded connection's leftover frame
            }
            self.shared.comm.count_received(env.data.len() as u64);
            return Ok(env);
        }
    }

    fn try_recv(&self) -> Option<Envelope> {
        loop {
            let (generation, env) = self.inbox.try_recv().ok()?;
            let fenced = {
                let slots = self.shared.lock_slots();
                generation <= slots[env.from - 1].fenced
            };
            if fenced {
                self.shared.fenced_drops.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.shared.comm.count_received(env.data.len() as u64);
            return Some(env);
        }
    }

    fn comm_stats(&self) -> CommStats {
        self.shared.comm.snapshot()
    }

    /// Supervision over sockets: ensure slot `tid - 1` holds a *fresh*
    /// connection the master has never addressed. A live connection that
    /// arrived after the master's last send (the slave already
    /// reconnected on its own) is adopted as-is; otherwise the current
    /// connection — straggler or corpse — is fenced and the call waits up
    /// to the hub's reconnect patience for a replacement.
    fn respawn(&self, tid: TaskId) -> bool {
        assert!(
            tid >= 1 && tid <= self.nslots(),
            "task id {tid} out of range for the hub"
        );
        let k = tid - 1;
        let fenced_up_to = {
            let mut slots = self.shared.lock_slots();
            let slot = &mut slots[k];
            if slot.live && slot.generation > slot.last_sent {
                return true; // a fresh, never-addressed connection is waiting
            }
            slot.fenced = slot.fenced.max(slot.generation);
            if let Some(writer) = slot.writer.take() {
                writer.shutdown(); // evict the straggler
                slot.live = false;
            }
            slot.fenced
        };
        let deadline = Instant::now().checked_add(self.reconnect_patience);
        loop {
            {
                let slots = self.shared.lock_slots();
                if slots[k].live && slots[k].generation > fenced_up_to {
                    return true;
                }
            }
            match deadline {
                Some(d) if Instant::now() >= d => return false,
                _ => std::thread::sleep(POLL),
            }
        }
    }
}

impl Drop for SocketHub {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Closing every connection unblocks the per-connection readers;
        // the accept loop notices the flag at its next poll.
        for slot in self.shared.lock_slots().iter_mut() {
            if let Some(writer) = slot.writer.take() {
                writer.shutdown();
            }
            slot.live = false;
        }
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Some(path) = &self.unlink {
            let _ = std::fs::remove_file(path);
        }
    }
}

// ---------------------------------------------------------------------------
// Plain framed connections (no farm semantics)
// ---------------------------------------------------------------------------

/// A plain framed byte-stream connection: the farm's wire format
/// ([`crate::frame`]) without its handshake, slots or task identities.
/// This is the client side of ad-hoc request/stream protocols layered on
/// the same framing — e.g. the job server's SUBMIT/ACCEPTED/…/DONE
/// exchange — and, via [`FramedListener`], the server side too.
pub struct FramedConn {
    stream: Stream,
}

impl FramedConn {
    /// Connect to a framed listener at `endpoint`.
    pub fn dial(endpoint: &Endpoint) -> io::Result<FramedConn> {
        endpoint.connect().map(|stream| FramedConn { stream })
    }

    /// Bound how long [`recv`](FramedConn::recv) blocks; `None` blocks
    /// forever. A lapsed timeout surfaces as a
    /// [`FrameError::Io`] with kind `WouldBlock`/`TimedOut`.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Send one message as a frame. `from` is free-form peer identity
    /// (clients conventionally send 0).
    pub fn send<T: Wire>(&mut self, from: TaskId, tag: u32, msg: &T) -> Result<(), FrameError> {
        self.send_bytes(from, tag, &msg.to_bytes())
    }

    /// Send one pre-encoded payload as a frame.
    pub fn send_bytes(&mut self, from: TaskId, tag: u32, data: &[u8]) -> Result<(), FrameError> {
        write_frame(&mut self.stream, from, tag, data)
    }

    /// Receive one frame; `Ok(None)` is the peer's clean close.
    pub fn recv(&mut self) -> Result<Option<Envelope>, FrameError> {
        read_frame(&mut self.stream)
    }

    /// Clone the connection (shared underlying stream) — lets one half
    /// read while the other writes.
    pub fn try_clone(&self) -> io::Result<FramedConn> {
        self.stream.try_clone().map(|stream| FramedConn { stream })
    }

    /// Close both directions; unblocks a peer (or a clone) parked in a
    /// read.
    pub fn shutdown(&self) {
        self.stream.shutdown();
    }
}

/// A listener handing out [`FramedConn`]s: the server side of plain
/// framed protocols. Shares the hub's bind safety — a Unix endpoint
/// already served by a live listener is refused with
/// [`SocketError::AddrInUse`], and only stale socket files are reclaimed.
pub struct FramedListener {
    inner: Listener,
    unlink: Option<PathBuf>,
}

impl FramedListener {
    /// Bind on `endpoint` (probe-before-reclaim, like
    /// [`SocketHub::bind`]).
    pub fn bind(endpoint: &Endpoint) -> Result<FramedListener, SocketError> {
        let (inner, unlink) = bind_listener(endpoint)?;
        Ok(FramedListener { inner, unlink })
    }

    /// Toggle nonblocking accepts. When nonblocking, a pending-less
    /// [`accept`](FramedListener::accept) fails with kind `WouldBlock`.
    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        self.inner.set_nonblocking(nb)
    }

    /// Accept one connection.
    pub fn accept(&self) -> io::Result<FramedConn> {
        self.inner.accept().map(|stream| FramedConn { stream })
    }
}

impl Drop for FramedListener {
    fn drop(&mut self) {
        if let Some(path) = &self.unlink {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_unix(tag: &str) -> Endpoint {
        let path = std::env::temp_dir().join(format!(
            "mkp-sock-{tag}-{}-{:?}.sock",
            std::process::id(),
            std::thread::current().id()
        ));
        Endpoint::Unix(path)
    }

    const T: Duration = Duration::from_secs(5);

    #[test]
    fn endpoint_parse_accepts_and_rejects() {
        assert_eq!(
            Endpoint::parse("unix:/tmp/x.sock"),
            Ok(Endpoint::Unix(PathBuf::from("/tmp/x.sock")))
        );
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:9000"),
            Ok(Endpoint::Tcp("127.0.0.1:9000".to_string()))
        );
        for (raw, needle) in [
            ("", "malformed address"),
            ("/tmp/x.sock", "malformed address"),
            ("unix:", "empty unix socket path"),
            ("tcp:9000", "missing a port"),
            ("tcp::9000", "empty host"),
            ("tcp:localhost:port", "malformed port"),
            ("tcp:localhost:0", "port 0"),
            ("tcp:localhost:99999", "malformed port"),
        ] {
            let err = Endpoint::parse(raw).unwrap_err();
            assert!(err.contains(needle), "{raw:?}: {err}");
        }
    }

    #[test]
    fn handshake_assigns_slots_and_envelopes_flow() {
        let ep = temp_unix("flow");
        let hub = SocketHub::bind(&ep, 2, T).unwrap();
        let a = SocketTransport::connect(&ep, None, 0).unwrap();
        let b = SocketTransport::connect(&ep, None, 0).unwrap();
        let mut tids = [a.tid(), b.tid()];
        tids.sort();
        assert_eq!(tids, [1, 2]);
        assert_eq!(a.ntasks(), 3);
        assert_eq!(hub.wait_ready(T), 2);

        // Hub → slave and back.
        hub.send_bytes(b.tid(), 7, vec![0; 8]).unwrap();
        hub.send_bytes(a.tid(), 7, vec![1, 2, 3]).unwrap();
        let env = a.recv_timeout(T).unwrap();
        assert_eq!(
            (env.from, env.tag, env.data.as_slice()),
            (0, 7, &[1u8, 2, 3][..])
        );
        a.send_bytes(0, 9, vec![4, 5]).unwrap();
        let env = hub.recv_timeout(T).unwrap();
        assert_eq!(
            (env.from, env.tag, env.data.as_slice()),
            (a.tid(), 9, &[4u8, 5][..])
        );

        // Both ends counted once, at the boundary.
        let hs = Transport::comm_stats(&hub);
        assert_eq!((hs.sent, hs.received), (2, 1));
        assert_eq!((hs.bytes_sent, hs.bytes_received), (11, 2));
    }

    #[test]
    fn requested_slot_is_honored_when_free() {
        let ep = temp_unix("slot");
        let _hub = SocketHub::bind(&ep, 3, T).unwrap();
        // Slot 1 serves task 2.
        let b = SocketTransport::connect(&ep, Some(1), 0).unwrap();
        assert_eq!(b.tid(), 2);
        let a = SocketTransport::connect(&ep, Some(1), 0).unwrap();
        assert_ne!(a.tid(), 2, "occupied slot handed out twice");
    }

    #[test]
    fn full_hub_rejects_extra_connections() {
        let ep = temp_unix("full");
        let hub = SocketHub::bind(&ep, 1, T).unwrap();
        let _a = SocketTransport::connect(&ep, None, 0).unwrap();
        assert_eq!(hub.wait_ready(T), 1);
        match SocketTransport::connect(&ep, None, 0) {
            Err(SocketError::Rejected) => {}
            Err(SocketError::Io(_)) => {} // close may race the handshake read
            Err(other) => panic!("expected rejection, got {other:?}"),
            Ok(t) => panic!("expected rejection, got slot {}", t.tid()),
        }
    }

    #[test]
    fn reconnect_reclaims_the_slot_and_respawn_fences_stale_frames() {
        let ep = temp_unix("fence");
        let hub = SocketHub::bind(&ep, 1, T).unwrap();
        let first = SocketTransport::connect(&ep, None, 0).unwrap();
        assert_eq!(hub.wait_ready(T), 1);
        hub.send_bytes(1, 2, vec![0]).unwrap(); // an "assignment"
        first.recv_timeout(T).unwrap();
        // The straggler pushes a frame the master has not consumed yet,
        // then the supervision decides to replace it.
        first.send_bytes(0, 3, vec![9, 9]).unwrap();
        // Give the hub's reader a moment to buffer the stale frame.
        std::thread::sleep(Duration::from_millis(50));
        let respawned = std::thread::scope(|scope| {
            let waiter = scope.spawn(|| Transport::respawn(&hub, 1));
            // The evicted slave observes the shutdown and reconnects, as
            // the remote serve loop would.
            let reborn = loop {
                match SocketTransport::connect(&ep, Some(0), 1) {
                    Ok(t) => break t,
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            };
            assert_eq!(reborn.tid(), 1);
            let ok = waiter.join().expect("respawn waiter");
            (ok, reborn)
        });
        assert!(respawned.0, "respawn never saw the reconnect");
        // The stale pre-fence frame is dropped, not delivered.
        assert!(matches!(
            hub.recv_timeout(Duration::from_millis(200)),
            Err(CommError::Timeout)
        ));
        assert_eq!(hub.hub_stats().fenced_drops, 1);
        assert_eq!(hub.hub_stats().reconnects, 1);
        // The reborn connection's frames flow.
        respawned.1.send_bytes(0, 3, vec![7]).unwrap();
        let env = hub.recv_timeout(T).unwrap();
        assert_eq!(env.data, vec![7]);
    }

    #[test]
    fn respawn_adopts_a_fresh_unaddressed_connection() {
        let ep = temp_unix("adopt");
        let hub = SocketHub::bind(&ep, 1, T).unwrap();
        {
            let first = SocketTransport::connect(&ep, None, 0).unwrap();
            assert_eq!(hub.wait_ready(T), 1);
            hub.send_bytes(1, 2, vec![0]).unwrap();
            first.recv_timeout(T).unwrap();
            // first dies (dropped: stream shut down).
        }
        // The replacement connects before the master notices the death.
        let reborn = SocketTransport::connect(&ep, Some(0), 1).unwrap();
        assert_eq!(hub.wait_ready(T), 1);
        // respawn must adopt it instantly instead of fencing it.
        assert!(Transport::respawn(&hub, 1));
        hub.send_bytes(1, 2, vec![5]).unwrap();
        let env = reborn.recv_timeout(T).unwrap();
        assert_eq!(env.data, vec![5]);
        assert_eq!(hub.hub_stats().fenced_drops, 0);
    }

    #[test]
    fn second_bind_on_a_live_endpoint_is_refused_and_the_server_survives() {
        // Regression: SocketHub::bind used to remove_file the path
        // unconditionally, silently destroying a live server's endpoint.
        let ep = temp_unix("inuse");
        let hub = SocketHub::bind(&ep, 1, T).unwrap();
        match SocketHub::bind(&ep, 1, T) {
            Err(SocketError::AddrInUse { endpoint }) => {
                assert_eq!(endpoint, ep.to_string());
            }
            Err(other) => panic!("expected AddrInUse, got {other:?}"),
            Ok(_) => panic!("expected AddrInUse, got a second hub"),
        }
        // The first hub's endpoint still works end to end (the failed
        // bind neither unlinked the path nor consumed a slot with its
        // probe connection).
        let slave = SocketTransport::connect(&ep, None, 0).unwrap();
        assert_eq!(hub.wait_ready(T), 1);
        hub.send_bytes(1, 2, vec![8]).unwrap();
        assert_eq!(slave.recv_timeout(T).unwrap().data, vec![8]);
    }

    #[test]
    fn stale_socket_file_is_reclaimed() {
        // A socket file whose owner is gone (dropped listener leaves the
        // file when unlink is skipped) must not block a fresh bind.
        let ep = temp_unix("stale");
        let Endpoint::Unix(path) = &ep else {
            unreachable!()
        };
        let dead = UnixListener::bind(path).unwrap();
        drop(dead); // close without unlinking: the stale-file shape
        assert!(path.exists(), "stale socket file should linger");
        let hub = SocketHub::bind(&ep, 1, T).unwrap();
        let slave = SocketTransport::connect(&ep, None, 0).unwrap();
        assert_eq!(hub.wait_ready(T), 1);
        drop(slave);
    }

    #[test]
    fn oversized_send_is_rejected_and_the_link_survives() {
        use crate::frame::MAX_FRAME_PAYLOAD;
        let ep = temp_unix("bigsend");
        let hub = SocketHub::bind(&ep, 1, T).unwrap();
        let slave = SocketTransport::connect(&ep, None, 0).unwrap();
        assert_eq!(hub.wait_ready(T), 1);

        let big = vec![0u8; MAX_FRAME_PAYLOAD + 1];
        let err = slave.send_bytes(0, 3, big).unwrap_err();
        assert!(matches!(err, CommError::Oversized { .. }), "{err:?}");
        let err = hub
            .send_bytes(1, 3, vec![0u8; MAX_FRAME_PAYLOAD + 1])
            .unwrap_err();
        assert!(matches!(err, CommError::Oversized { .. }), "{err:?}");

        // Neither direction tore the connection down: ordinary traffic
        // still flows both ways after the rejections.
        slave.send_bytes(0, 4, vec![1]).unwrap();
        assert_eq!(hub.recv_timeout(T).unwrap().data, vec![1]);
        hub.send_bytes(1, 5, vec![2]).unwrap();
        assert_eq!(slave.recv_timeout(T).unwrap().data, vec![2]);
    }

    #[test]
    fn framed_conn_round_trips_over_a_framed_listener() {
        let ep = temp_unix("framed");
        let listener = FramedListener::bind(&ep).unwrap();
        let client = std::thread::spawn({
            let ep = ep.clone();
            move || {
                let mut conn = FramedConn::dial(&ep).unwrap();
                conn.send_bytes(0, 11, b"ping").unwrap();
                let reply = conn.recv().unwrap().expect("reply");
                assert_eq!((reply.tag, reply.data.as_slice()), (12, &b"pong"[..]));
                assert!(conn.recv().unwrap().is_none(), "clean close after");
            }
        });
        let mut server = listener.accept().unwrap();
        let env = server.recv().unwrap().expect("request");
        assert_eq!((env.tag, env.data.as_slice()), (11, &b"ping"[..]));
        server.send_bytes(0, 12, b"pong").unwrap();
        server.shutdown();
        client.join().unwrap();
        // And the listener refuses to be displaced while alive.
        assert!(matches!(
            FramedListener::bind(&ep),
            Err(SocketError::AddrInUse { .. })
        ));
    }

    use crate::netfault::NetFaultPlan;

    /// Short recv window for "nothing must arrive" assertions.
    const SHORT: Duration = Duration::from_millis(200);

    fn armed(spec: &str) -> Arc<NetFaultState> {
        Arc::new(NetFaultState::new(NetFaultPlan::parse(spec).unwrap()))
    }

    #[test]
    fn net_fault_drop_swallows_the_nth_slave_frame() {
        let ep = temp_unix("nfdrop");
        let hub = SocketHub::bind(&ep, 1, T).unwrap();
        let fault = armed("drop@2");
        let slave = SocketTransport::connect_with(&ep, None, 0, Some(Arc::clone(&fault))).unwrap();
        assert_eq!(hub.wait_ready(T), 1);
        for k in 1..=3u8 {
            slave.send_bytes(0, 1, vec![k]).unwrap();
        }
        assert_eq!(hub.recv_timeout(T).unwrap().data, vec![1]);
        assert_eq!(hub.recv_timeout(T).unwrap().data, vec![3]);
        assert!(matches!(hub.recv_timeout(SHORT), Err(CommError::Timeout)));
        assert_eq!(fault.injected(), 1);
    }

    #[test]
    fn net_fault_duplicate_sends_the_hub_frame_twice() {
        let ep = temp_unix("nfdup");
        let fault = armed("dup@1");
        let hub = SocketHub::bind_with(&ep, 1, T, Some(Arc::clone(&fault))).unwrap();
        let slave = SocketTransport::connect(&ep, None, 0).unwrap();
        assert_eq!(hub.wait_ready(T), 1);
        hub.send_bytes(1, 2, vec![7]).unwrap();
        hub.send_bytes(1, 2, vec![8]).unwrap();
        assert_eq!(slave.recv_timeout(T).unwrap().data, vec![7]);
        assert_eq!(slave.recv_timeout(T).unwrap().data, vec![7]);
        assert_eq!(slave.recv_timeout(T).unwrap().data, vec![8]);
        assert_eq!(fault.injected(), 1);
    }

    #[test]
    fn net_fault_corrupt_frame_is_dropped_and_counted_hub_side() {
        let ep = temp_unix("nfcorrupt");
        let hub = SocketHub::bind(&ep, 1, T).unwrap();
        let fault = armed("corrupt@2");
        let slave = SocketTransport::connect_with(&ep, None, 0, Some(Arc::clone(&fault))).unwrap();
        assert_eq!(hub.wait_ready(T), 1);
        for k in 1..=3u8 {
            slave.send_bytes(0, 1, vec![k]).unwrap();
        }
        // The damaged frame vanishes; the stream stays in sync and the
        // frame after it arrives intact.
        assert_eq!(hub.recv_timeout(T).unwrap().data, vec![1]);
        assert_eq!(hub.recv_timeout(T).unwrap().data, vec![3]);
        assert_eq!(hub.hub_stats().corrupt_drops, 1);
        assert_eq!(fault.injected(), 1);
    }

    #[test]
    fn net_fault_corrupt_frame_is_dropped_and_counted_client_side() {
        let ep = temp_unix("nfcorrupt2");
        let fault = armed("corrupt@1");
        let hub = SocketHub::bind_with(&ep, 1, T, Some(Arc::clone(&fault))).unwrap();
        let slave = SocketTransport::connect(&ep, None, 0).unwrap();
        assert_eq!(hub.wait_ready(T), 1);
        hub.send_bytes(1, 2, vec![9]).unwrap();
        hub.send_bytes(1, 2, vec![5]).unwrap();
        assert_eq!(slave.recv_timeout(T).unwrap().data, vec![5]);
        assert_eq!(slave.corrupt_drops(), 1);
        assert_eq!(fault.injected(), 1);
    }

    #[test]
    fn net_fault_truncate_kills_the_link_mid_frame_without_hanging() {
        let ep = temp_unix("nftrunc");
        let hub = SocketHub::bind(&ep, 1, T).unwrap();
        let fault = armed("truncate@2");
        let slave = SocketTransport::connect_with(&ep, None, 0, Some(Arc::clone(&fault))).unwrap();
        assert_eq!(hub.wait_ready(T), 1);
        slave.send_bytes(0, 1, vec![1]).unwrap();
        assert_eq!(hub.recv_timeout(T).unwrap().data, vec![1]);
        // The truncated frame's tail never arrives; the hub sees the
        // stream die mid-frame, not a hang.
        slave.send_bytes(0, 1, vec![2]).unwrap();
        assert!(matches!(hub.recv_timeout(SHORT), Err(CommError::Timeout)));
        assert_eq!(fault.injected(), 1);
        // The cut is fatal for the connection — exactly what a flaky
        // network does — and a reconnect restores service.
        let reborn = SocketTransport::connect(&ep, Some(0), 1).unwrap();
        assert_eq!(hub.wait_ready(T), 1);
        reborn.send_bytes(0, 1, vec![3]).unwrap();
        assert_eq!(hub.recv_timeout(T).unwrap().data, vec![3]);
    }

    #[test]
    fn net_fault_delay_holds_the_frame_then_delivers_it_intact() {
        let ep = temp_unix("nfdelay");
        let hub = SocketHub::bind(&ep, 1, T).unwrap();
        let fault = armed("delay@1:300");
        let slave = SocketTransport::connect_with(&ep, None, 0, Some(Arc::clone(&fault))).unwrap();
        assert_eq!(hub.wait_ready(T), 1);
        let before = Instant::now();
        slave.send_bytes(0, 1, vec![4]).unwrap();
        assert_eq!(hub.recv_timeout(T).unwrap().data, vec![4]);
        assert!(
            before.elapsed() >= Duration::from_millis(300),
            "frame arrived before the delay lapsed"
        );
        assert_eq!(fault.injected(), 1);
    }

    #[test]
    fn connect_with_retry_gives_up_against_a_dead_address() {
        let ep = temp_unix("nfretry");
        let before = Instant::now();
        let err = match SocketTransport::connect_with_retry(
            &ep,
            None,
            0,
            Duration::from_millis(300),
            None,
        ) {
            Ok(_) => panic!("expected Unreachable, got a transport"),
            Err(e) => e,
        };
        match &err {
            SocketError::Unreachable {
                endpoint,
                attempts,
                patience,
            } => {
                assert_eq!(*endpoint, ep.to_string());
                assert!(*attempts >= 1);
                assert_eq!(*patience, Duration::from_millis(300));
            }
            other => panic!("expected Unreachable, got {other:?}"),
        }
        assert!(
            before.elapsed() < Duration::from_secs(5),
            "retry loop overshot its total deadline"
        );
        assert!(err.to_string().contains("no listener at"));
    }

    #[test]
    fn dead_slot_send_reports_peer_gone() {
        let ep = temp_unix("gone");
        let hub = SocketHub::bind(&ep, 1, Duration::from_millis(100));
        let hub = hub.unwrap();
        assert!(matches!(
            hub.send_bytes(1, 1, vec![1]),
            Err(CommError::PeerGone { to: 1 })
        ));
        // And respawn on a never-connected slot times out cleanly.
        assert!(!Transport::respawn(&hub, 1));
    }
}
