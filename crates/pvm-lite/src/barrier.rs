//! Reusable sense-reversing barrier.
//!
//! The paper's master/slave scheme is *synchronous*: all slaves must reach
//! the rendezvous before the next search iteration starts (§4.2: "each
//! slave must wait until all other slaves terminate their search"). A
//! sense-reversing barrier gives that rendezvous without re-allocating per
//! round.
//!
//! Built on `std::sync::{Mutex, Condvar}` only (the workspace carries no
//! registry dependencies). The standard mutex poisons when a participant
//! panics while holding it; the barrier's critical section only updates a
//! counter and a sense bit, which are never observable half-written, so
//! every lock recovers from poisoning explicitly via
//! [`std::sync::PoisonError::into_inner`]. A participant that panics
//! *between* waits simply never arrives, which the farm surfaces as a task
//! panic rather than a deadlock at this level.

use std::sync::{Arc, Condvar, Mutex, PoisonError};

struct State {
    waiting: usize,
    sense: bool,
}

/// A reusable barrier for a fixed party count. Clone handles freely; all
/// clones address the same barrier.
#[derive(Clone)]
pub struct Barrier {
    parties: usize,
    state: Arc<(Mutex<State>, Condvar)>,
}

impl Barrier {
    /// Barrier for `parties` participants (≥ 1).
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1, "barrier needs at least one party");
        Barrier {
            parties,
            state: Arc::new((
                Mutex::new(State {
                    waiting: 0,
                    sense: false,
                }),
                Condvar::new(),
            )),
        }
    }

    /// Number of participants.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Block until all parties arrive. Returns `true` for exactly one
    /// participant per round (the "leader", last to arrive).
    pub fn wait(&self) -> bool {
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock().unwrap_or_else(PoisonError::into_inner);
        let my_sense = st.sense;
        st.waiting += 1;
        if st.waiting == self.parties {
            // Last arrival: flip the sense and release the round.
            st.waiting = 0;
            st.sense = !st.sense;
            cvar.notify_all();
            true
        } else {
            while st.sense == my_sense {
                st = cvar.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn single_party_never_blocks() {
        let b = Barrier::new(1);
        for _ in 0..10 {
            assert!(b.wait(), "sole participant is always the leader");
        }
    }

    #[test]
    fn releases_all_parties() {
        let b = Barrier::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let b = b.clone();
                let counter = counter.clone();
                s.spawn(move || {
                    b.wait();
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn exactly_one_leader_per_round() {
        let b = Barrier::new(3);
        for _ in 0..5 {
            let leaders = Arc::new(AtomicUsize::new(0));
            std::thread::scope(|s| {
                for _ in 0..3 {
                    let b = b.clone();
                    let leaders = leaders.clone();
                    s.spawn(move || {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    });
                }
            });
            assert_eq!(leaders.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn reusable_across_rounds_without_deadlock() {
        // Threads loop through many rounds with tiny staggered sleeps: any
        // sense-reversal bug would deadlock (test would time out) or lose a
        // round (counts would diverge).
        let b = Barrier::new(3);
        let rounds = 50;
        let total = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for t in 0..3usize {
                let b = b.clone();
                let total = total.clone();
                s.spawn(move || {
                    for r in 0..rounds {
                        if t == r % 3 {
                            std::thread::sleep(Duration::from_micros(50));
                        }
                        b.wait();
                        total.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 3 * rounds);
    }

    #[test]
    fn survives_a_panicked_nonparticipant() {
        // A thread that panics while holding an unrelated clone poisons
        // nothing observable: later rounds still complete.
        let b = Barrier::new(2);
        let poisoner = b.clone();
        let h = std::thread::spawn(move || {
            let _keep = poisoner; // held across the panic
            panic!("injected panic");
        });
        assert!(h.join().is_err());
        let counter = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let b = b.clone();
                let counter = counter.clone();
                s.spawn(move || {
                    b.wait();
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_parties_rejected() {
        Barrier::new(0);
    }
}
