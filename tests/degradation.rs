//! Fault-injection tests of the engine's graceful degradation: a farm that
//! loses slaves mid-run quarantines them and finishes on the survivors,
//! and only losing the *last* worker is an error.

use pts_mkp::prelude::*;
use pvm_lite::WorkerPool;
use std::time::Duration;

fn small_instance() -> Instance {
    gk_instance(
        "degradation_it",
        GkSpec {
            n: 40,
            m: 5,
            tightness: 0.5,
            seed: 33,
        },
    )
}

/// A config with a short report deadline so straggler tests don't stall
/// the suite; kills are detected by the deadline too, so every mode uses
/// it.
fn faulty_cfg(seed: u64) -> RunConfig {
    RunConfig {
        p: 4,
        rounds: 3,
        report_timeout: Duration::from_millis(1500),
        ..RunConfig::new(60_000, seed)
    }
}

/// Kill round for a mode: SEQ/ITS/DTS fold everything into round 0, the
/// multi-round modes get a genuine mid-run kill.
fn mid_round(mode: Mode) -> usize {
    match mode {
        Mode::Sequential | Mode::Independent | Mode::Decomposed => 0,
        _ => 1,
    }
}

#[test]
fn every_parallel_mode_survives_losing_one_slave_mid_run() {
    let inst = small_instance();
    for mode in Mode::all() {
        if mode == Mode::Sequential {
            continue; // its only worker is its last worker — see below
        }
        let mut engine = Engine::new(4);
        engine.inject_fault(fault_at_round(1, mid_round(mode), FaultAction::Kill));
        let r = engine.run(&inst, mode, &faulty_cfg(5)).unwrap();
        assert!(r.best.is_feasible(&inst), "{mode:?} infeasible");
        assert_eq!(r.lost_workers.len(), 1, "{mode:?}: {:?}", r.lost_workers);
        let loss = &r.lost_workers[0];
        assert_eq!(loss.worker, 1, "{mode:?} lost the wrong worker");
        assert!(
            matches!(&loss.cause, LossCause::Panicked(msg) if msg.contains("fault injection")),
            "{mode:?} cause not enriched to the panic: {:?}",
            loss.cause
        );
    }
}

#[test]
fn degraded_runs_are_deterministic() {
    let inst = small_instance();
    for mode in [Mode::CooperativeAdaptive, Mode::Asynchronous] {
        let run = || {
            let mut engine = Engine::new(4);
            engine.inject_fault(fault_at_round(2, 1, FaultAction::Kill));
            engine.run(&inst, mode, &faulty_cfg(9)).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.best.value(), b.best.value(), "{mode:?} nondeterministic");
        assert_eq!(a.round_best, b.round_best, "{mode:?} nondeterministic");
        assert_eq!(a.lost_workers, b.lost_workers, "{mode:?} losses diverged");
    }
}

#[test]
fn kill_at_round_zero_and_last_round_both_degrade_gracefully() {
    let inst = small_instance();
    let cfg = faulty_cfg(7);
    for round in [0, cfg.rounds - 1] {
        for mode in [Mode::CooperativeAdaptive, Mode::Asynchronous] {
            let mut engine = Engine::new(4);
            engine.inject_fault(fault_at_round(0, round, FaultAction::Kill));
            let r = engine.run(&inst, mode, &cfg).unwrap();
            assert!(r.best.is_feasible(&inst), "{mode:?} round {round}");
            assert_eq!(
                r.lost_workers.len(),
                1,
                "{mode:?} round {round}: {:?}",
                r.lost_workers
            );
            assert_eq!(r.lost_workers[0].worker, 0, "{mode:?} round {round}");
        }
    }
}

#[test]
fn losing_the_only_worker_is_an_error() {
    let inst = small_instance();
    let mut engine = Engine::new(2);
    engine.inject_fault(fault_at_round(0, 0, FaultAction::Kill));
    let err = engine
        .run(&inst, Mode::Sequential, &faulty_cfg(3))
        .unwrap_err();
    let EngineError::AllWorkersLost { losses } = err else {
        panic!("expected AllWorkersLost, got {err}");
    };
    assert_eq!(losses.len(), 1);
    assert_eq!(losses[0].worker, 0);
    // The engine survives the disaster: the next run is clean.
    let ok = engine.run(&inst, Mode::Sequential, &faulty_cfg(3)).unwrap();
    assert!(ok.best.is_feasible(&inst));
    assert!(!ok.is_degraded());
}

#[test]
fn straggler_exceeding_the_deadline_is_quarantined() {
    let inst = small_instance();
    // The delay (4s) dwarfs the report deadline (1.5s): the master must
    // give up on the straggler, not wait it out. Sync and pipelined
    // delivery take different quarantine paths; check both.
    for mode in [Mode::CooperativeAdaptive, Mode::Asynchronous] {
        let mut engine = Engine::new(4);
        engine.inject_fault(fault_at_round(
            2,
            1,
            FaultAction::Delay(Duration::from_secs(4)),
        ));
        let r = engine.run(&inst, mode, &faulty_cfg(11)).unwrap();
        assert!(r.best.is_feasible(&inst), "{mode:?}");
        assert_eq!(r.lost_workers.len(), 1, "{mode:?}: {:?}", r.lost_workers);
        let loss = &r.lost_workers[0];
        assert_eq!(loss.worker, 2, "{mode:?}");
        assert_eq!(loss.cause, LossCause::Deadline, "{mode:?}");
    }
}

#[test]
fn degraded_engine_pool_heals_for_the_next_run() {
    let inst = small_instance();
    let mut engine = Engine::new(4);
    let spawned = engine.spawned_threads();
    engine.inject_fault(fault_at_round(1, 1, FaultAction::Kill));
    let degraded = engine
        .run(&inst, Mode::CooperativeAdaptive, &faulty_cfg(13))
        .unwrap();
    assert!(degraded.is_degraded());
    // An injected task kill is caught on its thread — no respawn needed —
    // and the same engine serves a clean full-strength run right after.
    let clean = engine
        .run(&inst, Mode::CooperativeAdaptive, &faulty_cfg(13))
        .unwrap();
    assert!(!clean.is_degraded());
    assert!(clean.best.value() >= degraded.best.value() || clean.best.is_feasible(&inst));
    assert_eq!(engine.spawned_threads(), spawned);
}

#[test]
fn worker_pool_replaces_a_dead_thread() {
    // The pvm-lite healing path end to end: kill an OS thread, watch the
    // pool respawn it on the next run.
    let mut pool = WorkerPool::new(4);
    let before = pool.thread_ids();
    pool.kill_thread(2);
    let r = pool.run(|ctx| ctx.tid()).unwrap();
    assert_eq!(r, vec![0, 1, 2, 3]);
    assert_eq!(pool.respawned_threads(), 1);
    let after = pool.thread_ids();
    assert_ne!(before[2], after[2], "dead thread not replaced");
    assert_eq!(before[0], after[0], "healthy thread respawned");
}
