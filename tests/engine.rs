//! Integration tests of the persistent engine: one warm worker pool serving
//! consecutive runs of every mode without respawning threads.

use pts_mkp::prelude::*;

fn small_instance() -> Instance {
    gk_instance(
        "engine_it",
        GkSpec {
            n: 50,
            m: 5,
            tightness: 0.5,
            seed: 21,
        },
    )
}

fn small_cfg(seed: u64) -> RunConfig {
    RunConfig {
        p: 3,
        rounds: 3,
        ..RunConfig::new(90_000, seed)
    }
}

#[test]
fn consecutive_runs_reuse_the_same_worker_pool() {
    let inst = small_instance();
    let mut engine = Engine::new(3);
    let threads_before = engine.thread_ids();
    let spawned_before = engine.spawned_threads();

    let a = engine
        .run(&inst, Mode::CooperativeAdaptive, &small_cfg(1))
        .unwrap();
    let b = engine
        .run(&inst, Mode::CooperativeAdaptive, &small_cfg(2))
        .unwrap();
    assert!(a.best.is_feasible(&inst) && b.best.is_feasible(&inst));

    // No thread respawn between runs: the pool holds the exact same OS
    // threads it started with, and the lifetime spawn counter is unmoved.
    assert_eq!(engine.thread_ids(), threads_before);
    assert_eq!(engine.spawned_threads(), spawned_before);
}

#[test]
fn one_warm_pool_serves_every_mode() {
    let inst = small_instance();
    let mut engine = Engine::new(3);
    let threads_before = engine.thread_ids();
    for mode in Mode::all() {
        let warm = engine.run(&inst, mode, &small_cfg(9)).unwrap();
        assert!(warm.best.is_feasible(&inst), "{mode:?} infeasible");
        assert_eq!(warm.mode, mode);
        // The warm-pool run is the same deterministic search as the
        // one-shot convenience path.
        let cold = run_mode(&inst, mode, &small_cfg(9));
        assert_eq!(warm.best.value(), cold.best.value(), "{mode:?} diverged");
    }
    assert_eq!(
        engine.thread_ids(),
        threads_before,
        "a mode respawned the pool"
    );
}

#[test]
fn custom_report_timeout_is_honored_end_to_end() {
    // A generous custom timeout must not change results; it is plumbing,
    // not search behaviour.
    let inst = small_instance();
    let mut cfg = small_cfg(5);
    let baseline = run_mode(&inst, Mode::Cooperative, &cfg);
    cfg.report_timeout = std::time::Duration::from_secs(30);
    let custom = run_mode(&inst, Mode::Cooperative, &cfg);
    assert_eq!(baseline.best.value(), custom.best.value());
    assert_eq!(baseline.round_best, custom.round_best);
}
