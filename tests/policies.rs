//! The policy conformance battery: every engine policy — the paper's five
//! trajectory modes, DTS, and the two promising-search-space policies
//! (CORE, REPAIR) — must uphold the same contracts:
//!
//! 1. **Determinism** — identical seeded runs are bit-identical, down to
//!    the metrics JSON.
//! 2. **Transport parity** — the Unix-socket farm reproduces the
//!    in-process pool exactly.
//! 3. **Fault tolerance** — a mid-run worker kill with a restart budget
//!    heals with zero losses, and healing itself is deterministic.
//! 4. **Resume** — for the checkpointable (multi-round synchronous)
//!    policies, interrupt-then-resume is bit-identical to the
//!    uninterrupted run.
//!
//! The battery iterates `Mode::all()`, so a future ninth policy is
//! conscripted automatically — and the count assertion below makes sure
//! nobody shrinks the roster without updating the contracts.

use pts_mkp::parallel_tabu::{run_remote, serve_slave, Endpoint, ServeOutcome};
use pts_mkp::prelude::*;
use std::time::Duration;

fn battery_instance() -> Instance {
    gk_instance(
        "battery",
        GkSpec {
            n: 40,
            m: 5,
            tightness: 0.5,
            seed: 61,
        },
    )
}

fn battery_cfg(seed: u64) -> RunConfig {
    RunConfig {
        p: 4,
        rounds: 4,
        report_timeout: Duration::from_secs(30),
        ..RunConfig::new(80_000, seed)
    }
}

/// The policies whose runs can be checkpointed and resumed: more than one
/// round (there is a mid-run state to save) and synchronous delivery (the
/// round barrier is the snapshot point).
fn resumable(mode: Mode) -> bool {
    matches!(
        mode,
        Mode::Cooperative | Mode::CooperativeAdaptive | Mode::Core | Mode::Repair
    )
}

fn unix_endpoint(tag: &str) -> Endpoint {
    Endpoint::parse(&format!(
        "unix:{}",
        std::env::temp_dir()
            .join(format!("mkp-battery-{tag}-{}.sock", std::process::id()))
            .display()
    ))
    .expect("valid endpoint")
}

fn run_over_sockets(inst: &Instance, mode: Mode, cfg: &RunConfig, tag: &str) -> ModeReport {
    let ep = unix_endpoint(tag);
    let patience = Duration::from_secs(60);
    let workers = if mode == Mode::Sequential { 1 } else { cfg.p };
    let slaves: Vec<_> = (0..workers)
        .map(|_| {
            let ep = ep.clone();
            std::thread::spawn(move || serve_slave(&ep, patience))
        })
        .collect();
    let report = run_remote(inst, mode, cfg, &ep).expect("distributed run");
    for slave in slaves {
        let outcome = slave.join().expect("slave thread").expect("slave serve");
        assert_eq!(outcome, ServeOutcome::Finished, "slave saw no STOP");
    }
    report
}

#[test]
fn the_battery_covers_all_eight_policies() {
    assert_eq!(
        Mode::all().len(),
        8,
        "policy roster changed: extend the battery's contracts to the new policy"
    );
    assert!(Mode::all().contains(&Mode::Core));
    assert!(Mode::all().contains(&Mode::Repair));
}

#[test]
fn every_policy_is_deterministic_down_to_the_metrics() {
    let inst = battery_instance();
    for mode in Mode::all() {
        let cfg = battery_cfg(71);
        let a = run_mode(&inst, mode, &cfg);
        let b = run_mode(&inst, mode, &cfg);
        assert!(a.best.is_feasible(&inst), "{mode:?} infeasible");
        assert!(a.best.value() > 0, "{mode:?} found nothing");
        assert_eq!(a.best.bits(), b.best.bits(), "{mode:?} solution diverged");
        assert_eq!(a.round_best, b.round_best, "{mode:?} trajectory diverged");
        assert_eq!(
            (a.total_moves, a.total_evals, a.regenerations),
            (b.total_moves, b.total_evals, b.regenerations),
            "{mode:?} work totals diverged"
        );
        assert_eq!(
            a.telemetry.to_metrics_json(),
            b.telemetry.to_metrics_json(),
            "{mode:?} metrics diverged"
        );
    }
}

#[test]
fn every_policy_survives_the_socket_transport_bit_for_bit() {
    let inst = battery_instance();
    let cfg = RunConfig {
        p: 2,
        rounds: 2,
        report_timeout: Duration::from_secs(30),
        ..RunConfig::new(40_000, 73)
    };
    for mode in Mode::all() {
        let local = run_mode(&inst, mode, &cfg);
        let remote = run_over_sockets(&inst, mode, &cfg, &format!("{mode:?}"));
        assert_eq!(
            local.best.bits(),
            remote.best.bits(),
            "{mode:?}: socket solution diverged"
        );
        assert_eq!(
            local.round_best, remote.round_best,
            "{mode:?}: socket trajectory diverged"
        );
        assert_eq!(
            (local.total_moves, local.total_evals),
            (remote.total_moves, remote.total_evals),
            "{mode:?}: socket work totals diverged"
        );
    }
}

#[test]
fn every_policy_heals_a_killed_worker_deterministically() {
    // Worker 0 is killed as it dequeues its round-0 assignment — the one
    // fault position every policy has, including the one-round modes — and
    // the restart budget must heal it: zero losses, and two such runs are
    // bit-identical down to the metrics (resurrection is part of the
    // deterministic machine, not a lucky recovery).
    let inst = battery_instance();
    for mode in Mode::all() {
        let run = || {
            let cfg = RunConfig {
                report_timeout: Duration::from_millis(1500),
                max_restarts: 2,
                restart_backoff: Duration::from_millis(10),
                ..battery_cfg(79)
            };
            let mut engine = Engine::new(cfg.p);
            engine.inject_fault(fault_at_round(0, 0, FaultAction::Kill));
            engine.run(&inst, mode, &cfg).expect("faulty run finishes")
        };
        let a = run();
        let b = run();
        assert!(a.best.is_feasible(&inst), "{mode:?} infeasible");
        assert!(
            a.lost_workers.is_empty(),
            "{mode:?} failed to heal: {:?}",
            a.lost_workers
        );
        assert!(
            !a.resurrections.is_empty(),
            "{mode:?} recorded no resurrection — the fault never fired"
        );
        assert_eq!(a.best.bits(), b.best.bits(), "{mode:?} healing diverged");
        assert_eq!(a.round_best, b.round_best, "{mode:?} trajectory diverged");
        assert_eq!(a.resurrections, b.resurrections, "{mode:?}");
        assert_eq!(
            a.telemetry.to_metrics_json(),
            b.telemetry.to_metrics_json(),
            "{mode:?} metrics diverged under healing"
        );
    }
}

#[test]
fn resumable_policies_resume_bit_identically() {
    let inst = battery_instance();
    let dir = std::env::temp_dir().join(format!("mkp_battery_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for mode in Mode::all().into_iter().filter(|&m| resumable(m)) {
        let path = dir.join(format!("{mode:?}.snap"));
        let mut cfg = battery_cfg(83);
        let mut engine = Engine::new(cfg.p);
        let uninterrupted = engine.run(&inst, mode, &cfg).unwrap();

        cfg.checkpoint = Some(CheckpointCfg {
            path: path.clone(),
            every: 2,
        });
        let checkpointed = engine.run(&inst, mode, &cfg).unwrap();
        assert_eq!(
            checkpointed.best.bits(),
            uninterrupted.best.bits(),
            "{mode:?}: checkpoint writing perturbed the search"
        );

        let snap = Snapshot::load(&path).unwrap();
        assert_eq!(snap.next_round, 2, "{mode:?} snapshot at the wrong round");
        cfg.checkpoint = None;
        let resumed = engine.resume(&inst, snap, &cfg).unwrap();

        assert_eq!(resumed.best.value(), uninterrupted.best.value(), "{mode:?}");
        assert_eq!(resumed.best.bits(), uninterrupted.best.bits(), "{mode:?}");
        assert_eq!(resumed.round_best, uninterrupted.round_best, "{mode:?}");
        assert_eq!(resumed.total_moves, uninterrupted.total_moves, "{mode:?}");
        assert_eq!(resumed.total_evals, uninterrupted.total_evals, "{mode:?}");
        assert_eq!(
            resumed.regenerations, uninterrupted.regenerations,
            "{mode:?}"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn core_policy_beats_or_matches_its_own_greedy_start() {
    // Not a conformance clause but a sanity floor for the tentpole: the
    // LP-core policy must never end below the deterministic greedy value
    // it could have had for free.
    let inst = battery_instance();
    let greedy_value = greedy(&inst, &Ratios::new(&inst)).value();
    for mode in [Mode::Core, Mode::Repair] {
        let r = run_mode(&inst, mode, &battery_cfg(89));
        assert!(
            r.best.value() >= greedy_value,
            "{mode:?} ended at {} below greedy {greedy_value}",
            r.best.value()
        );
    }
}
