//! End-to-end pipeline tests: generator → parallel search → verification,
//! across every mode, exercising the whole crate stack through the public
//! facade only.

use pts_mkp::prelude::*;

fn cfg(seed: u64, evals: u64) -> RunConfig {
    RunConfig {
        p: 3,
        rounds: 5,
        ..RunConfig::new(evals, seed)
    }
}

#[test]
fn every_mode_full_pipeline_on_gk_instance() {
    let inst = gk_instance(
        "pipe",
        GkSpec {
            n: 80,
            m: 8,
            tightness: 0.5,
            seed: 11,
        },
    );
    let lp = mkp_exact::bounds::lp_bound(&inst).expect("LP solvable");
    for mode in [
        Mode::Sequential,
        Mode::Independent,
        Mode::Cooperative,
        Mode::CooperativeAdaptive,
        Mode::Asynchronous,
    ] {
        let r = run_mode(&inst, mode, &cfg(3, 400_000));
        assert!(r.best.is_feasible(&inst), "{mode:?} returned infeasible");
        assert!(r.best.check_consistent(&inst));
        assert!(
            (r.best.value() as f64) <= lp.objective + 1e-6,
            "{mode:?} beat the LP bound?!"
        );
        assert!(r.total_moves > 0);
        assert!(r.wall.as_nanos() > 0);
    }
}

#[test]
fn cooperative_modes_reach_exact_optimum_on_small_suite() {
    // A cross-section of the FP suite small enough for fast proofs.
    for k in [0usize, 2, 5, 10, 40] {
        let inst = fp_instance(k);
        let ts = run_mode(
            &inst,
            Mode::CooperativeAdaptive,
            &RunConfig {
                p: 4,
                rounds: 10,
                ..RunConfig::new(150_000 * inst.n() as u64, 0xF5)
            },
        );
        let exact = solve_with_incumbent(&inst, &BbConfig::default(), Some(&ts.best));
        assert!(exact.proven, "{} unproven", inst.name());
        assert_eq!(
            ts.best.value(),
            exact.solution.value(),
            "{}: CTS2 missed the optimum",
            inst.name()
        );
    }
}

#[test]
fn value_chain_orders_correctly() {
    // greedy ≤ TS best ≤ optimum ≤ LP bound, on several seeds.
    for seed in 0..4 {
        let inst = uncorrelated_instance("chain", 35, 4, 0.5, seed);
        let ratios = Ratios::new(&inst);
        let g = greedy(&inst, &ratios).value();
        let ts = run_mode(&inst, Mode::CooperativeAdaptive, &cfg(seed, 300_000));
        let exact = solve_with_incumbent(&inst, &BbConfig::default(), Some(&ts.best));
        let lp = mkp_exact::bounds::lp_bound(&inst).unwrap().objective;
        assert!(exact.proven);
        assert!(g <= ts.best.value(), "seed {seed}");
        assert!(ts.best.value() <= exact.solution.value(), "seed {seed}");
        assert!((exact.solution.value() as f64) <= lp + 1e-6, "seed {seed}");
    }
}

#[test]
fn total_budget_is_shared_fairly_across_modes() {
    let inst = gk_instance(
        "fair",
        GkSpec {
            n: 60,
            m: 5,
            tightness: 0.5,
            seed: 4,
        },
    );
    let budget = 600_000u64;
    for mode in Mode::table2() {
        let r = run_mode(&inst, mode, &cfg(9, budget));
        assert!(
            r.total_evals >= budget * 9 / 10 && r.total_evals <= budget * 13 / 10,
            "{mode:?} spent {} of {budget}",
            r.total_evals
        );
    }
}

#[test]
fn facade_prelude_covers_the_workflow() {
    // The doc-advertised workflow compiles and runs through the prelude.
    let inst = gk_instance(
        "facade",
        GkSpec {
            n: 30,
            m: 3,
            tightness: 0.5,
            seed: 21,
        },
    );
    let mut rng = Xoshiro256::seed_from_u64(1);
    let start = randomized_greedy(&inst, &Ratios::new(&inst), &mut rng, 3);
    let report = run_tabu(
        &inst,
        &Ratios::new(&inst),
        start,
        &TsConfig::default_for(inst.n()),
        Budget::evals(50_000),
        &mut rng,
    );
    assert!(report.best.is_feasible(&inst));
}
