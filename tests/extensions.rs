//! Integration tests for the extension subsystems: decomposition,
//! Chu–Beasley class, multi-instance files, parallel exact search and
//! path relinking — all through the public facade.

use pts_mkp::prelude::*;

#[test]
fn decomposed_mode_competes_on_cb_instance() {
    let inst = mkp::generate::chu_beasley_instance("ext", 60, 5, 0.5, 3);
    let cfg = RunConfig {
        p: 4,
        rounds: 1,
        ..RunConfig::new(400_000, 11)
    };
    let dts = run_mode(&inst, Mode::Decomposed, &cfg);
    assert!(dts.best.is_feasible(&inst));
    // Must at least beat the static greedy baseline.
    let g = greedy(&inst, &Ratios::new(&inst));
    assert!(dts.best.value() >= g.value());
}

#[test]
fn restriction_cells_partition_lifts_back() {
    let inst = uncorrelated_instance("cells", 30, 3, 0.5, 4);
    let ratios = Ratios::new(&inst);
    let split = parallel_tabu::decomposed::split_variables(&inst, &ratios, 2);
    let mut best_lifted = 0i64;
    let mut feasible_cells = 0;
    for cell in 0u8..4 {
        let f_in: Vec<usize> = split
            .iter()
            .enumerate()
            .filter(|(b, _)| (cell >> b) & 1 == 1)
            .map(|(_, &j)| j)
            .collect();
        let f_out: Vec<usize> = split
            .iter()
            .enumerate()
            .filter(|(b, _)| (cell >> b) & 1 == 0)
            .map(|(_, &j)| j)
            .collect();
        if let Ok(r) = mkp::restrict::Restriction::new(&inst, &f_in, &f_out) {
            feasible_cells += 1;
            let sub_sol = greedy(r.instance(), &Ratios::new(r.instance()));
            let lifted = r.lift(&inst, &sub_sol);
            assert!(lifted.is_feasible(&inst), "cell {cell} lift infeasible");
            best_lifted = best_lifted.max(lifted.value());
        }
    }
    assert!(feasible_cells >= 2, "partition collapsed");
    assert!(best_lifted > 0);
}

#[test]
fn multi_instance_files_feed_the_solver() {
    let suite: Vec<_> = (0..3)
        .map(|k| uncorrelated_instance(format!("multi{k}"), 20 + k, 3, 0.5, k as u64))
        .collect();
    let text = mkp::format::write_instances(&suite);
    let parsed = mkp::format::parse_instances("suite", &text).unwrap();
    assert_eq!(parsed.len(), 3);
    for (orig, back) in suite.iter().zip(&parsed) {
        assert_eq!(orig.profits(), back.profits());
        let cfg = RunConfig {
            p: 2,
            rounds: 2,
            ..RunConfig::new(60_000, 5)
        };
        let r = run_mode(back, Mode::CooperativeAdaptive, &cfg);
        assert!(r.best.is_feasible(back));
    }
}

#[test]
fn parallel_exact_agrees_with_sequential_and_ts() {
    for seed in 0..3 {
        let inst = uncorrelated_instance("pex", 24, 3, 0.5, seed);
        let seq = solve_exact(&inst, &BbConfig::default());
        let par = mkp_exact::solve_parallel(&inst, &BbConfig::default(), 4);
        assert!(seq.proven && par.proven);
        assert_eq!(seq.solution.value(), par.solution.value());
        let ts = run_mode(
            &inst,
            Mode::CooperativeAdaptive,
            &RunConfig {
                p: 2,
                rounds: 3,
                ..RunConfig::new(200_000, seed)
            },
        );
        assert!(ts.best.value() <= par.solution.value());
    }
}

#[test]
fn relink_improves_between_elite_endpoints() {
    // End-to-end: relinking two independently evolved solutions stays
    // feasible and never loses to the better endpoint.
    let inst = gk_instance(
        "rl",
        GkSpec {
            n: 80,
            m: 5,
            tightness: 0.5,
            seed: 9,
        },
    );
    let ratios = Ratios::new(&inst);
    let a = run_mode(
        &inst,
        Mode::Sequential,
        &RunConfig {
            p: 1,
            rounds: 1,
            ..RunConfig::new(150_000, 1)
        },
    )
    .best;
    let b = run_mode(
        &inst,
        Mode::Sequential,
        &RunConfig {
            p: 1,
            rounds: 1,
            ..RunConfig::new(150_000, 2)
        },
    )
    .best;
    let mut stats = mkp_tabu::moves::MoveStats::default();
    let (best, _) = mkp_tabu::relink::path_relink(&inst, &ratios, &a, &b, &mut stats);
    assert!(best.is_feasible(&inst));
    assert!(best.value() >= a.value());
}

#[test]
fn best_first_available_through_facade() {
    let inst = uncorrelated_instance("bff", 20, 3, 0.5, 7);
    let bfs = mkp_exact::solve_best_first(&inst, &BbConfig::default());
    let dfs = solve_exact(&inst, &BbConfig::default());
    assert!(bfs.proven);
    assert_eq!(bfs.solution.value(), dfs.solution.value());
}
