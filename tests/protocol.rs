//! Integration tests of the pvm-lite transport under the real protocol
//! messages, including scale and failure injection.

use mkp::generate::{gk_instance, GkSpec};
use mkp::{BitVec, Solution};
use parallel_tabu::messages::{tags, AssignMsg, ProblemMsg, ReportMsg};
use parallel_tabu::{run_mode, Mode, RunConfig};
use pvm_lite::{run_farm, CommError, FarmError, Wire};
use std::time::Duration;

const T: Duration = Duration::from_secs(10);

#[test]
fn problem_broadcast_survives_large_instances() {
    // A 25×500 instance crosses the codec intact.
    let inst = gk_instance(
        "wire",
        GkSpec {
            n: 500,
            m: 25,
            tightness: 0.5,
            seed: 1,
        },
    );
    let msg = ProblemMsg::from_instance(&inst);
    let bytes = msg.to_bytes();
    assert!(bytes.len() > 500 * 25 * 8, "suspiciously small encoding");
    let back = ProblemMsg::from_bytes(&bytes).unwrap().into_instance();
    assert_eq!(back.profits(), inst.profits());
    for i in 0..inst.m() {
        assert_eq!(back.constraint_row(i), inst.constraint_row(i));
    }
}

#[test]
fn full_master_slave_exchange_over_the_farm() {
    // A miniature hand-rolled master/slave round over raw pvm-lite,
    // independent of the production driver: proves the protocol types are
    // sufficient on their own.
    let inst = gk_instance(
        "mini",
        GkSpec {
            n: 40,
            m: 4,
            tightness: 0.5,
            seed: 2,
        },
    );
    let p = 3;
    let results = run_farm(p + 1, |ctx| {
        if ctx.tid() == 0 {
            let problem = ProblemMsg::from_instance(&inst);
            for s in 1..=p {
                ctx.send(s, tags::PROBLEM, &problem).unwrap();
                let assign = AssignMsg::trajectory(
                    BitVec::zeros(inst.n()),
                    mkp_tabu::Strategy::default_for(inst.n()),
                    20_000,
                    s as u64,
                );
                ctx.send(s, tags::ASSIGN, &assign).unwrap();
            }
            let mut best = 0i64;
            for _ in 0..p {
                let env = ctx.recv_timeout(T).unwrap();
                assert_eq!(env.tag, tags::REPORT);
                let report: ReportMsg = env.decode().unwrap();
                // Verify the reported solution against the real instance.
                let sol = report.best_solution(&inst);
                assert!(sol.is_feasible(&inst));
                best = best.max(sol.value());
            }
            for s in 1..=p {
                ctx.send_bytes(s, tags::STOP, Vec::new()).unwrap();
            }
            best
        } else {
            let problem: ProblemMsg = ctx.recv_timeout(T).unwrap().decode().unwrap();
            let local = problem.into_instance();
            let ratios = mkp::eval::Ratios::new(&local);
            let assign: AssignMsg = ctx.recv_timeout(T).unwrap().decode().unwrap();
            let mut rng = mkp::Xoshiro256::seed_from_u64(assign.seed);
            let report = mkp_tabu::search::run(
                &local,
                &ratios,
                Solution::from_bits(&local, assign.initial),
                &mkp_tabu::TsConfig::default_for(local.n()),
                mkp_tabu::Budget::evals(assign.budget_evals),
                &mut rng,
            );
            ctx.send(
                0,
                tags::REPORT,
                &ReportMsg {
                    best: report.best.bits().clone(),
                    elite: vec![],
                    initial_value: report.initial_value,
                    best_value: report.best.value(),
                    moves: report.stats.moves,
                    evals: report.stats.candidate_evals,
                    epoch: 0,
                    history_counts: vec![],
                    history_iterations: 0,
                },
            )
            .unwrap();
            let stop = ctx.recv_timeout(T).unwrap();
            assert_eq!(stop.tag, tags::STOP);
            0
        }
    })
    .unwrap();
    assert!(results[0] > 0, "master found nothing");
}

#[test]
fn many_slaves_scale() {
    // 8 slaves + master on one core: the rendezvous protocol must not
    // deadlock regardless of scheduling.
    let inst = gk_instance(
        "scale",
        GkSpec {
            n: 50,
            m: 5,
            tightness: 0.5,
            seed: 3,
        },
    );
    let cfg = RunConfig {
        p: 8,
        rounds: 3,
        ..RunConfig::new(240_000, 17)
    };
    let r = run_mode(&inst, Mode::CooperativeAdaptive, &cfg);
    assert!(r.best.is_feasible(&inst));
    assert_eq!(r.round_best.len(), 3);
}

#[test]
fn single_slave_degenerate_farm() {
    let inst = gk_instance(
        "p1",
        GkSpec {
            n: 40,
            m: 4,
            tightness: 0.5,
            seed: 4,
        },
    );
    let cfg = RunConfig {
        p: 1,
        rounds: 4,
        ..RunConfig::new(100_000, 23)
    };
    for mode in [
        Mode::Cooperative,
        Mode::CooperativeAdaptive,
        Mode::Independent,
    ] {
        let r = run_mode(&inst, mode, &cfg);
        assert!(r.best.is_feasible(&inst), "{mode:?} with P=1 failed");
    }
}

#[test]
fn slave_panic_is_contained_and_reported() {
    let err = run_farm(3, |ctx| {
        match ctx.tid() {
            0 => {
                // Master: wait for whatever arrives, tolerate silence.
                let _ = ctx.recv_timeout(Duration::from_millis(100));
            }
            1 => panic!("injected slave crash"),
            _ => {}
        }
    })
    .unwrap_err();
    let FarmError::TaskPanicked { tid, message } = err;
    assert_eq!(tid, 1);
    assert!(
        message.contains("injected slave crash"),
        "panic payload lost: {message:?}"
    );
}

#[test]
fn corrupted_report_is_rejected_not_trusted() {
    // Flip the claimed best_value in a packed report: decoding succeeds but
    // solution verification must catch the inconsistency.
    let inst = gk_instance(
        "tamper",
        GkSpec {
            n: 30,
            m: 3,
            tightness: 0.5,
            seed: 5,
        },
    );
    let ratios = mkp::eval::Ratios::new(&inst);
    let sol = mkp::greedy::greedy(&inst, &ratios);
    let msg = ReportMsg {
        best: sol.bits().clone(),
        elite: vec![],
        initial_value: 0,
        best_value: sol.value() + 100, // lie
        moves: 1,
        evals: 1,
        epoch: 0,
        history_counts: vec![],
        history_iterations: 0,
    };
    let decoded = ReportMsg::from_bytes(&msg.to_bytes()).unwrap();
    let verified = std::panic::catch_unwind(|| decoded.best_solution(&inst));
    assert!(verified.is_err(), "tampered value slipped through");
}

#[test]
fn timeout_surfaces_when_peer_never_answers() {
    let r = run_farm(2, |ctx| {
        if ctx.tid() == 0 {
            matches!(
                ctx.recv_timeout(Duration::from_millis(50)),
                Err(CommError::Timeout | CommError::Disconnected)
            )
        } else {
            true // exits immediately, never sends
        }
    })
    .unwrap();
    assert!(r[0]);
}
