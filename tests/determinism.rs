//! Reproducibility guarantees across the stack: every search mode is
//! bit-deterministic in the master seed, generators are pure functions of
//! their seeds, and distinct seeds genuinely decorrelate.

use pts_mkp::prelude::*;

#[test]
fn every_mode_has_deterministic_best_value() {
    // Regression gate for the engine refactor: same seed + same RunConfig
    // must give the identical best value for all six modes — including ATS
    // (pipelined delivery processes reports in a fixed logical order) and
    // DTS (disjoint cells, deterministic reduction).
    let inst = gk_instance(
        "det6",
        GkSpec {
            n: 60,
            m: 5,
            tightness: 0.5,
            seed: 11,
        },
    );
    let cfg = RunConfig {
        p: 3,
        rounds: 3,
        ..RunConfig::new(180_000, 41)
    };
    for mode in Mode::all() {
        let a = run_mode(&inst, mode, &cfg);
        let b = run_mode(&inst, mode, &cfg);
        assert_eq!(
            a.best.value(),
            b.best.value(),
            "{mode:?} best value not reproducible"
        );
        assert_eq!(a.round_best, b.round_best, "{mode:?} curves differ");
    }
}

#[test]
fn synchronous_modes_bit_deterministic() {
    let inst = gk_instance(
        "det",
        GkSpec {
            n: 70,
            m: 6,
            tightness: 0.5,
            seed: 5,
        },
    );
    for mode in Mode::table2() {
        let cfg = RunConfig {
            p: 3,
            rounds: 4,
            ..RunConfig::new(300_000, 77)
        };
        let a = run_mode(&inst, mode, &cfg);
        let b = run_mode(&inst, mode, &cfg);
        assert_eq!(a.best.bits(), b.best.bits(), "{mode:?} bits differ");
        assert_eq!(a.round_best, b.round_best, "{mode:?} curves differ");
        assert_eq!(a.total_evals, b.total_evals, "{mode:?} work differs");
    }
}

#[test]
fn different_seeds_explore_differently() {
    let inst = gk_instance(
        "seeds",
        GkSpec {
            n: 100,
            m: 10,
            tightness: 0.5,
            seed: 6,
        },
    );
    let run = |seed| {
        run_mode(
            &inst,
            Mode::CooperativeAdaptive,
            &RunConfig {
                p: 3,
                rounds: 4,
                ..RunConfig::new(400_000, seed)
            },
        )
    };
    let a = run(1);
    let b = run(2);
    // Different seeds must not produce identical trajectories (values may
    // coincide on plateaus; the assignments should not).
    assert!(
        a.best.bits() != b.best.bits() || a.round_best != b.round_best,
        "seeds 1 and 2 produced identical searches"
    );
}

#[test]
fn generators_are_pure_functions_of_seed() {
    assert_eq!(fp_instance(7), fp_instance(7));
    let spec = GkSpec {
        n: 50,
        m: 5,
        tightness: 0.5,
        seed: 9,
    };
    assert_eq!(gk_instance("g", spec), gk_instance("g", spec));
    assert_eq!(
        uncorrelated_instance("u", 30, 3, 0.5, 4),
        uncorrelated_instance("u", 30, 3, 0.5, 4)
    );
    // Suites are stable end to end.
    let a: Vec<i64> = fp_suite().iter().map(|i| i.profit_sum()).collect();
    let b: Vec<i64> = fp_suite().iter().map(|i| i.profit_sum()).collect();
    assert_eq!(a, b);
}

#[test]
fn exact_solver_is_deterministic() {
    let inst = uncorrelated_instance("e", 25, 3, 0.5, 12);
    let a = solve_exact(&inst, &BbConfig::default());
    let b = solve_exact(&inst, &BbConfig::default());
    assert_eq!(a.solution.bits(), b.solution.bits());
    assert_eq!(a.nodes, b.nodes);
}

#[test]
fn rng_forks_are_reproducible_but_distinct() {
    let mut parent1 = Xoshiro256::seed_from_u64(1234);
    let mut parent2 = Xoshiro256::seed_from_u64(1234);
    let mut a = parent1.fork(3);
    let mut b = parent2.fork(3);
    for _ in 0..100 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
    let mut c = parent1.fork(4);
    assert_ne!(a.next_u64(), c.next_u64());
}
