//! Telemetry acceptance tests (DESIGN.md §11): the observability layer
//! must *measure without perturbing*. Three properties anchor that:
//!
//! 1. Deterministic runs yield deterministic counters — the `--metrics`
//!    JSON of two identically seeded runs is byte-identical, in every
//!    mode and both delivery schemes, and the counters agree with the
//!    engine's own aggregates.
//! 2. Span timings nest sanely: the master's Round span contains its
//!    Gather and Assign phases; slaves record one TS inner-loop span per
//!    served assignment.
//! 3. The bounded event ring degrades by dropping the *oldest* events and
//!    says how many it dropped; the metrics codec round-trips and
//!    tolerates unknown fields (forward compatibility).

use mkp::prop_check;
use mkp::testkit::gen;
use parallel_tabu::telemetry::COUNTER_COUNT;
use pts_mkp::prelude::*;

fn instance() -> Instance {
    gk_instance(
        "telemetry_it",
        GkSpec {
            n: 40,
            m: 5,
            tightness: 0.5,
            seed: 23,
        },
    )
}

fn cfg(seed: u64) -> RunConfig {
    RunConfig {
        p: 3,
        rounds: 3,
        ..RunConfig::new(60_000, seed)
    }
}

const ALL_MODES: [Mode; 6] = [
    Mode::Sequential,
    Mode::Independent,
    Mode::Cooperative,
    Mode::CooperativeAdaptive,
    Mode::Asynchronous,
    Mode::Decomposed,
];

#[test]
fn metrics_json_is_byte_identical_across_repeats_in_every_mode() {
    let inst = instance();
    for mode in ALL_MODES {
        let run = || {
            let mut engine = Engine::new(3);
            engine.run(&inst, mode, &cfg(11)).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(
            a.telemetry.to_metrics_json(),
            b.telemetry.to_metrics_json(),
            "{mode:?}: counters must be deterministic"
        );
        // The slave-side kernel counters must agree with the engine's own
        // aggregation of the processed reports: nothing lost, nothing
        // double-counted.
        assert_eq!(
            a.telemetry.total(Counter::MovesExecuted),
            a.total_moves,
            "{mode:?}"
        );
        assert_eq!(
            a.telemetry.total(Counter::CandidateEvals),
            a.total_evals,
            "{mode:?}"
        );
        // Every accepted report was counted, and the master broadcast the
        // problem to the whole farm exactly once.
        assert!(
            a.telemetry.counter(0, Counter::ReportsReceived) > 0,
            "{mode:?}"
        );
        assert_eq!(
            a.telemetry.counter(0, Counter::ProblemMsgsSent),
            3,
            "{mode:?}: one problem broadcast per pool slave"
        );
        // The comm layer saw at least the protocol messages the engine
        // says it sent.
        assert!(
            a.telemetry.counter(0, Counter::MsgsSent)
                >= a.telemetry.counter(0, Counter::ProblemMsgsSent)
                    + a.telemetry.counter(0, Counter::AssignMsgsSent),
            "{mode:?}"
        );
        assert!(a.telemetry.counter(0, Counter::BytesSent) > 0, "{mode:?}");
    }
}

#[test]
fn disabling_telemetry_changes_counters_not_results() {
    let inst = instance();
    let mut on = Engine::new(3);
    let with_tel = on.run(&inst, Mode::CooperativeAdaptive, &cfg(13)).unwrap();
    let mut off = Engine::new(3);
    off.set_telemetry(false);
    let without_tel = off.run(&inst, Mode::CooperativeAdaptive, &cfg(13)).unwrap();
    assert_eq!(with_tel.best.bits(), without_tel.best.bits());
    assert_eq!(with_tel.round_best, without_tel.round_best);
    assert_eq!(without_tel.telemetry.total(Counter::MovesExecuted), 0);
    assert!(without_tel.telemetry.events.is_empty());
    assert!(with_tel.telemetry.total(Counter::MovesExecuted) > 0);
}

#[test]
fn synchronous_round_span_contains_gather_and_assign() {
    let inst = instance();
    let run_cfg = cfg(17);
    let mut engine = Engine::new(3);
    let r = engine.run(&inst, Mode::Cooperative, &run_cfg).unwrap();
    let t = &r.telemetry;
    let round = t.span(0, SpanKind::Round).expect("rounds ran");
    let gather = t.span(0, SpanKind::Gather).expect("gathers ran");
    let assign = t.span(0, SpanKind::Assign).expect("assigns ran");
    assert_eq!(round.count as usize, run_cfg.rounds);
    assert_eq!(gather.count as usize, run_cfg.rounds);
    assert_eq!(assign.count as usize, run_cfg.rounds);
    // Gather and Assign happen strictly inside a Round span, so their
    // total time cannot exceed the rounds' total.
    assert!(
        round.total_ns >= gather.total_ns + assign.total_ns,
        "round {} < gather {} + assign {}",
        round.total_ns,
        gather.total_ns,
        assign.total_ns
    );
    // Each slave timed one TS inner loop per served assignment.
    for task in 1..=run_cfg.p {
        let ts = t.span(task, SpanKind::TsInner).expect("slave spans");
        assert_eq!(ts.count as usize, run_cfg.rounds, "task {task}");
        assert!(ts.max_ns >= ts.p95_ns && ts.p95_ns >= ts.p50_ns);
    }
}

#[test]
fn pipelined_round_span_contains_gather_and_assign() {
    let inst = instance();
    let run_cfg = cfg(19);
    let mut engine = Engine::new(3);
    let r = engine.run(&inst, Mode::Asynchronous, &run_cfg).unwrap();
    let t = &r.telemetry;
    let round = t.span(0, SpanKind::Round).expect("pipeline ran");
    let gather = t.span(0, SpanKind::Gather).expect("waits ran");
    let assign = t.span(0, SpanKind::Assign).expect("sends ran");
    // The rendezvous-free pipeline is one long round.
    assert_eq!(round.count, 1);
    assert_eq!(
        assign.count as usize,
        run_cfg.p * run_cfg.rounds,
        "one assignment send per worker per logical round"
    );
    assert!(
        round.total_ns >= gather.total_ns + assign.total_ns,
        "round {} < gather {} + assign {}",
        round.total_ns,
        gather.total_ns,
        assign.total_ns
    );
}

#[test]
fn new_incumbent_events_trace_the_improvement_curve() {
    let inst = instance();
    let mut engine = Engine::new(3);
    let r = engine
        .run(&inst, Mode::CooperativeAdaptive, &cfg(29))
        .unwrap();
    let incumbents: Vec<&parallel_tabu::Event> = r
        .telemetry
        .events
        .iter()
        .filter(|e| e.kind == EventKind::NewIncumbent)
        .collect();
    assert!(!incumbents.is_empty(), "no incumbent was ever recorded");
    // Causal order: seq strictly increases, values strictly improve, and
    // the last one is the reported best.
    for w in incumbents.windows(2) {
        assert!(w[0].seq < w[1].seq);
        assert!(w[0].value < w[1].value);
    }
    assert_eq!(incumbents.last().unwrap().value, r.best.value());
}

#[test]
fn event_ring_overflow_keeps_newest_and_counts_dropped() {
    let tel = Telemetry::with_event_capacity(2, 4);
    for round in 0..10 {
        tel.event(1, EventKind::NewIncumbent, round, round as i64);
    }
    let snap = tel.snapshot();
    assert_eq!(snap.counter(1, Counter::EventsDropped), 6);
    let rounds: Vec<usize> = snap.events.iter().map(|e| e.round).collect();
    assert_eq!(rounds, vec![6, 7, 8, 9], "newest events must survive");
    // The drop count is part of the metrics document, so truncation is
    // never silent.
    let doc = parse_metrics_json(&snap.to_metrics_json()).unwrap();
    assert_eq!(doc.workers[1].get("events_dropped"), Some(6));
}

#[test]
fn prop_metrics_json_roundtrips_any_counter_matrix() {
    // Values stay under 2^53: the document is JSON, so readers (ours
    // included) may go through a double. No real counter gets near that.
    prop_check!(
        |rng| gen::vec_of(rng, 0, 120, |r| r.next_u64() & ((1u64 << 48) - 1)),
        |values| {
            let ntasks = 1 + values.len() / COUNTER_COUNT;
            let value_at = |task: usize, i: usize| {
                values
                    .get(task * COUNTER_COUNT + i)
                    .copied()
                    .unwrap_or((task * 31 + i) as u64 * 97)
            };
            let tel = Telemetry::new(ntasks);
            for task in 0..ntasks {
                for (i, c) in Counter::ALL.iter().enumerate() {
                    if *c == Counter::EventsDropped {
                        continue; // owned by the event ring, not addable
                    }
                    if c.merges_by_max() {
                        tel.record_max(task, *c, value_at(task, i));
                    } else {
                        tel.add(task, *c, value_at(task, i));
                    }
                }
            }
            let snap = tel.snapshot();
            let doc = validate_metrics_json(&snap.to_metrics_json()).unwrap();
            assert_eq!(doc.schema, METRICS_SCHEMA);
            assert_eq!(doc.workers.len(), ntasks);
            for (task, w) in doc.workers.iter().enumerate() {
                assert_eq!(w.task, task);
                for (i, c) in Counter::ALL.iter().enumerate() {
                    let expect = if *c == Counter::EventsDropped {
                        0
                    } else {
                        value_at(task, i)
                    };
                    assert_eq!(
                        w.get(c.name()),
                        Some(expect),
                        "task {task} counter {}",
                        c.name()
                    );
                }
            }
        }
    );
}

#[test]
fn prop_metrics_parser_tolerates_unknown_fields() {
    // A newer writer may add fields and whole counters anywhere; an older
    // reader must keep what it knows and carry the rest.
    prop_check!(
        |rng| (rng.next_u64() >> 1, gen::usize_in(rng, 0, 100_000)),
        |input| {
            let (value, suffix) = input;
            let value = value & ((1u64 << 48) - 1);
            let text = format!(
                "{{\n  \"schema\": \"{METRICS_SCHEMA}\",\n  \"generator_{suffix}\": \"x\",\n  \
                 \"workers\": [\n    {{\"task\": 0, \"extra\": {{\"deep\": [1, 2]}}, \
                 \"counters\": {{\"moves_executed\": {value}, \"zz_{suffix}\": 7}}}}\n  ]\n}}\n"
            );
            let doc = parse_metrics_json(&text).unwrap();
            assert_eq!(doc.workers.len(), 1);
            assert_eq!(doc.workers[0].get("moves_executed"), Some(value));
            assert_eq!(doc.workers[0].get(&format!("zz_{suffix}")), Some(7));
        }
    );
}
