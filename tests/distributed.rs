//! Distributed runs: the socket transport must reproduce the in-process
//! engine — same best value, same round trajectory, same master-side
//! message accounting — because both drive the identical `master_loop`.

use pts_mkp::parallel_tabu::{run_remote, serve_slave, Endpoint, ServeOutcome};
use pts_mkp::prelude::*;
use std::time::Duration;

fn unix_endpoint(tag: &str) -> Endpoint {
    Endpoint::parse(&format!(
        "unix:{}",
        std::env::temp_dir()
            .join(format!("mkp-dist-{tag}-{}.sock", std::process::id()))
            .display()
    ))
    .expect("valid endpoint")
}

fn small_instance(seed: u64) -> Instance {
    gk_instance(
        "dist",
        GkSpec {
            n: 40,
            m: 5,
            tightness: 0.5,
            seed,
        },
    )
}

fn small_cfg(seed: u64) -> RunConfig {
    RunConfig {
        p: 2,
        rounds: 2,
        report_timeout: Duration::from_secs(30),
        ..RunConfig::new(40_000, seed)
    }
}

/// Run `mode` distributed: the master in this thread over a fresh Unix
/// socket, `cfg.p` in-test slave processes as threads (same binary-level
/// protocol as `mkp slave`; process boundaries proper are covered by the
/// CI smoke).
fn run_over_sockets(inst: &Instance, mode: Mode, cfg: &RunConfig, tag: &str) -> ModeReport {
    let ep = unix_endpoint(tag);
    let patience = Duration::from_secs(60);
    // SEQ runs one worker regardless of p; the hub has exactly that many
    // slots and rejects supernumerary slaves.
    let workers = if mode == Mode::Sequential { 1 } else { cfg.p };
    let slaves: Vec<_> = (0..workers)
        .map(|_| {
            let ep = ep.clone();
            std::thread::spawn(move || serve_slave(&ep, patience))
        })
        .collect();
    let report = run_remote(inst, mode, cfg, &ep).expect("distributed run");
    for slave in slaves {
        let outcome = slave.join().expect("slave thread").expect("slave serve");
        assert_eq!(outcome, ServeOutcome::Finished, "slave saw no STOP");
    }
    report
}

#[test]
fn socket_runs_reproduce_the_inproc_engine_for_every_mode() {
    let inst = small_instance(3);
    let cfg = small_cfg(17);
    for mode in Mode::all() {
        let local = run_mode(&inst, mode, &cfg);
        let remote = run_over_sockets(&inst, mode, &cfg, &format!("{mode:?}"));
        assert_eq!(
            local.best.value(),
            remote.best.value(),
            "{mode:?}: socket best diverged"
        );
        assert_eq!(
            local.best.bits(),
            remote.best.bits(),
            "{mode:?}: socket solution diverged"
        );
        assert_eq!(
            local.round_best, remote.round_best,
            "{mode:?}: socket trajectory diverged"
        );
        assert_eq!(
            (local.total_moves, local.total_evals),
            (remote.total_moves, remote.total_evals),
            "{mode:?}: socket work totals diverged"
        );
    }
}

// Satellite regression: bytes and messages are counted once, at the
// transport boundary, so the master's accounting is identical whether the
// envelopes crossed a channel or a socket.
#[test]
fn inproc_and_socket_masters_count_the_same_messages() {
    let inst = small_instance(9);
    let cfg = small_cfg(29);
    // Engine::new(p) sizes the pool exactly p+1, so the in-process
    // broadcast reaches the same p peers the hub serves.
    let local = Engine::new(cfg.p)
        .run(&inst, Mode::CooperativeAdaptive, &cfg)
        .expect("in-process run");
    let remote = run_over_sockets(&inst, Mode::CooperativeAdaptive, &cfg, "parity");
    for counter in [
        Counter::MsgsSent,
        Counter::MsgsReceived,
        Counter::BytesSent,
        Counter::BytesReceived,
    ] {
        assert_eq!(
            local.telemetry.counter(0, counter),
            remote.telemetry.counter(0, counter),
            "master {counter:?} differs between transports"
        );
        assert!(
            local.telemetry.counter(0, counter) > 0,
            "master {counter:?} was never counted"
        );
    }
    // A clean run fences nothing and reconnects nobody.
    assert_eq!(remote.telemetry.counter(0, Counter::Reconnects), 0);
    assert_eq!(remote.telemetry.counter(0, Counter::FencedDrops), 0);
}

// Satellite regression for the search-space policies: CORE ships its
// LP-fixing to the slaves as a *seeded* cell (the slave projects the
// master-chosen start into the core and lifts elites back), and round 4
// crosses the re-identification boundary — both paths must be
// transport-invariant, not just the generic assignment plumbing.
#[test]
fn core_and_repair_policies_are_transport_invariant_across_a_refix() {
    let inst = small_instance(13);
    let cfg = RunConfig {
        p: 2,
        rounds: 5, // > REFIX_EVERY: the core is re-identified mid-run
        report_timeout: Duration::from_secs(30),
        ..RunConfig::new(50_000, 43)
    };
    for mode in [Mode::Core, Mode::Repair] {
        let local = run_mode(&inst, mode, &cfg);
        let remote = run_over_sockets(&inst, mode, &cfg, &format!("policy-{mode:?}"));
        assert_eq!(
            local.best.bits(),
            remote.best.bits(),
            "{mode:?}: socket solution diverged"
        );
        assert_eq!(
            local.round_best, remote.round_best,
            "{mode:?}: socket trajectory diverged"
        );
        assert_eq!(
            (local.total_moves, local.total_evals),
            (remote.total_moves, remote.total_evals),
            "{mode:?}: socket work totals diverged"
        );
    }
}

#[test]
fn remote_master_rejects_an_underpopulated_farm() {
    let inst = small_instance(5);
    let cfg = RunConfig {
        p: 2,
        slave_patience: Some(Duration::from_millis(300)),
        report_timeout: Duration::from_millis(200),
        ..small_cfg(1)
    };
    let ep = unix_endpoint("undersized");
    // One slave for a two-slot farm: the master must give up with a
    // specific complaint instead of hanging.
    let ep2 = ep.clone();
    let slave = std::thread::spawn(move || serve_slave(&ep2, Duration::from_secs(5)));
    let err = run_remote(&inst, Mode::Cooperative, &cfg, &ep).expect_err("underpopulated farm");
    let msg = err.to_string();
    assert!(msg.contains("1 of 2 slaves"), "{msg}");
    // The lone slave never got a STOP; it reports the master lost.
    let outcome = slave.join().expect("slave thread").expect("serve");
    assert_eq!(outcome, ServeOutcome::MasterLost);
}
