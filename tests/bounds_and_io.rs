//! Cross-crate consistency of the relaxation bounds, the exact solvers and
//! the file format.

use pts_mkp::prelude::*;

#[test]
fn bound_hierarchy_on_random_instances() {
    // optimum ≤ surrogate Dantzig (LP duals) and optimum ≤ LP ≤ min-Dantzig.
    for seed in 0..6 {
        let inst = uncorrelated_instance("h", 25, 4, 0.5, seed);
        let exact = solve_exact(&inst, &BbConfig::default());
        assert!(exact.proven);
        let opt = exact.solution.value() as f64;

        let lp = mkp_exact::bounds::lp_bound(&inst).unwrap();
        assert!(lp.objective + 1e-6 >= opt, "LP below optimum (seed {seed})");

        let dz = mkp::bounds::dantzig_bound(&inst);
        assert!(
            dz + 1e-6 >= lp.objective,
            "min-Dantzig below LP (seed {seed})"
        );

        let sur = mkp_exact::bounds::Surrogate::from_duals(&inst, &lp.duals, 1000.0);
        let order = sur.ratio_order(&inst);
        let sbound = sur.dantzig_suffix(&inst, &order, sur.capacity);
        assert!(
            sbound + 1e-6 >= opt,
            "surrogate below optimum (seed {seed})"
        );
    }
}

#[test]
fn bb_and_dp_agree_on_single_constraint() {
    for seed in 0..8 {
        let inst = uncorrelated_instance("sc", 50, 1, 0.5, seed);
        let bb = solve_exact(&inst, &BbConfig::default());
        let dp = mkp_exact::dp::solve_single(&inst);
        assert!(bb.proven);
        assert_eq!(bb.solution.value(), dp.value(), "seed {seed}");
    }
}

#[test]
fn instance_files_roundtrip_through_disk() {
    let dir = std::env::temp_dir().join("pts_mkp_io_test");
    std::fs::create_dir_all(&dir).unwrap();
    for seed in 0..3 {
        let inst = gk_instance(
            format!("disk_{seed}"),
            GkSpec {
                n: 60,
                m: 6,
                tightness: 0.5,
                seed,
            },
        )
        .with_best_known(12345);
        let path = dir.join(format!("inst_{seed}.mkp"));
        std::fs::write(&path, mkp::format::write_instance(&inst)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back = mkp::format::parse_instance(inst.name(), &text).unwrap();
        assert_eq!(back, inst);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn solver_consumes_parsed_instances() {
    // Full persistence → search loop, as the solve_file example does.
    let inst = gk_instance(
        "loop",
        GkSpec {
            n: 50,
            m: 5,
            tightness: 0.5,
            seed: 7,
        },
    );
    let text = mkp::format::write_instance(&inst);
    let parsed = mkp::format::parse_instance("loop", &text).unwrap();
    let cfg = RunConfig {
        p: 2,
        rounds: 3,
        ..RunConfig::new(150_000, 1)
    };
    let a = run_mode(&inst, Mode::CooperativeAdaptive, &cfg);
    let b = run_mode(&parsed, Mode::CooperativeAdaptive, &cfg);
    assert_eq!(
        a.best.value(),
        b.best.value(),
        "parse round-trip changed the search"
    );
}

#[test]
fn warm_start_never_hurts_the_proof() {
    for seed in 0..4 {
        let inst = uncorrelated_instance("w", 30, 4, 0.5, seed);
        let cold = solve_exact(&inst, &BbConfig::default());
        let ts = run_mode(
            &inst,
            Mode::CooperativeAdaptive,
            &RunConfig {
                p: 2,
                rounds: 3,
                ..RunConfig::new(200_000, seed)
            },
        );
        let warm = solve_with_incumbent(&inst, &BbConfig::default(), Some(&ts.best));
        assert!(cold.proven && warm.proven);
        assert_eq!(cold.solution.value(), warm.solution.value());
        assert!(
            warm.nodes <= cold.nodes,
            "seed {seed}: warm start expanded more nodes ({} > {})",
            warm.nodes,
            cold.nodes
        );
    }
}

#[test]
fn reduced_cost_fixing_consistent_with_proofs() {
    for seed in 0..4 {
        let inst = uncorrelated_instance("fx", 25, 3, 0.5, seed);
        let with = solve_exact(&inst, &BbConfig::default());
        let without = solve_exact(
            &inst,
            &BbConfig {
                use_fixing: false,
                ..BbConfig::default()
            },
        );
        assert_eq!(
            with.solution.value(),
            without.solution.value(),
            "seed {seed}"
        );
    }
}
