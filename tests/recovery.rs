//! Self-healing tests: supervised slave resurrection under fault injection,
//! and checkpoint/resume of the master state.
//!
//! The two acceptance properties of the recovery layer (DESIGN.md §10):
//!
//! 1. A run that loses a slave to a kill fault, with a restart budget,
//!    finishes with ZERO lost workers and at least one recorded
//!    resurrection — the loss costs wall-clock, not search quality.
//! 2. A run interrupted after a checkpoint and resumed from the snapshot
//!    produces a final report bit-identical (objective, best solution,
//!    per-round curves — wall clock excluded) to the uninterrupted run.

use pts_mkp::prelude::*;
use std::time::Duration;

fn small_instance() -> Instance {
    gk_instance(
        "recovery_it",
        GkSpec {
            n: 40,
            m: 5,
            tightness: 0.5,
            seed: 41,
        },
    )
}

/// Short deadlines and an aggressive restart budget: kills are detected
/// within 1.5 s and revived almost immediately.
fn healing_cfg(seed: u64) -> RunConfig {
    RunConfig {
        p: 4,
        rounds: 3,
        report_timeout: Duration::from_millis(1500),
        max_restarts: 2,
        restart_backoff: Duration::from_millis(10),
        ..RunConfig::new(60_000, seed)
    }
}

fn snap_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mkp_recovery_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn killed_slave_is_resurrected_with_zero_losses() {
    // The tentpole acceptance test: a mid-run kill with restarts enabled
    // ends with no quarantined workers and a recorded resurrection, in
    // both delivery schemes.
    let inst = small_instance();
    for mode in [Mode::CooperativeAdaptive, Mode::Asynchronous] {
        let mut engine = Engine::new(4);
        engine.inject_fault(fault_at_round(1, 1, FaultAction::Kill));
        let r = engine.run(&inst, mode, &healing_cfg(5)).unwrap();
        assert!(r.best.is_feasible(&inst), "{mode:?} infeasible");
        assert!(
            r.lost_workers.is_empty(),
            "{mode:?} still lost workers: {:?}",
            r.lost_workers
        );
        assert!(!r.resurrections.is_empty(), "{mode:?} recorded no revival");
        let rev = &r.resurrections[0];
        assert_eq!(rev.worker, 1, "{mode:?} revived the wrong worker");
        assert_eq!(rev.attempt, 1, "{mode:?} needed more than one attempt");
        assert_eq!(r.round_best.len(), healing_cfg(5).rounds, "{mode:?}");
        // Telemetry agrees with the recovery records, and the rebirth
        // protocol sent exactly one extra problem + seed: the initial
        // broadcast reaches the 4 pool slaves, the resurrected
        // incarnation gets one re-send of each.
        let t = &r.telemetry;
        assert_eq!(t.counter(0, Counter::Restarts), 1, "{mode:?}");
        assert_eq!(t.counter(0, Counter::ProblemMsgsSent), 5, "{mode:?}");
        assert_eq!(t.counter(0, Counter::SeedMsgsSent), 1, "{mode:?}");
        let revivals: Vec<&parallel_tabu::Event> = t
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Resurrection)
            .collect();
        assert_eq!(revivals.len(), 1, "{mode:?}");
        assert_eq!(revivals[0].value, 1, "{mode:?}: event names the worker");
    }
}

#[test]
fn resurrection_outcomes_are_deterministic() {
    // Two identical faulty runs heal identically: same best, same curves,
    // same resurrection records.
    let inst = small_instance();
    let run = || {
        let mut engine = Engine::new(4);
        engine.inject_fault(fault_at_round(2, 1, FaultAction::Kill));
        engine
            .run(&inst, Mode::CooperativeAdaptive, &healing_cfg(9))
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.best.value(), b.best.value());
    assert_eq!(a.best.bits(), b.best.bits());
    assert_eq!(a.round_best, b.round_best);
    assert_eq!(a.resurrections, b.resurrections);
    assert!(a.lost_workers.is_empty() && b.lost_workers.is_empty());
    // The deterministic-counters guarantee must survive fault injection
    // and healing, not just clean runs.
    assert_eq!(a.telemetry.to_metrics_json(), b.telemetry.to_metrics_json());
}

#[test]
fn exhausted_restart_budget_degrades_to_quarantine() {
    // kill-repeat murders every incarnation on its first delivery, so the
    // restart budget must run dry and the run must fall back to the old
    // degradation behavior: quarantine, survivors finish.
    let inst = small_instance();
    let mut engine = Engine::new(4);
    engine.inject_fault(fault_at_round(1, 1, FaultAction::KillRepeatedly));
    let cfg = healing_cfg(7);
    let r = engine.run(&inst, Mode::CooperativeAdaptive, &cfg).unwrap();
    assert!(r.best.is_feasible(&inst));
    assert!(r.is_degraded(), "budget exhaustion must quarantine");
    assert_eq!(r.lost_workers.len(), 1, "{:?}", r.lost_workers);
    assert_eq!(r.lost_workers[0].worker, 1);
    // Every budgeted attempt was spent before giving up, none succeeded.
    assert!(
        r.resurrections.is_empty(),
        "a kill-repeat incarnation cannot report: {:?}",
        r.resurrections
    );
    assert_eq!(r.round_best.len(), cfg.rounds, "survivors must finish");
    // The telemetry trace shows the whole arc: every budgeted restart was
    // attempted, then the worker was quarantined — exactly once.
    assert_eq!(
        r.telemetry.counter(0, Counter::Restarts),
        cfg.max_restarts as u64
    );
    let quarantines: Vec<&parallel_tabu::Event> = r
        .telemetry
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Quarantine)
        .collect();
    assert_eq!(quarantines.len(), 1);
    assert_eq!(quarantines[0].value, 1, "event names the worker");
}

#[test]
fn delayed_straggler_report_is_dropped_by_epoch_not_processed() {
    // A slave delayed past the report deadline is resurrected; its late
    // report then arrives from a *superseded* incarnation and must be
    // dropped by the epoch check — visible in `epochs_dropped` — rather
    // than processed twice or crashing the gather.
    //
    // Timing: unlike a killed slave, a delayed one *survives* and keeps
    // its pool thread until it gives up on the silent master, so the
    // reborn incarnation (queued on the same thread) only runs after the
    // straggler's patience expires. The schedule below makes that fit
    // inside the first rebirth window: the straggler wakes at ~700 ms,
    // files its stale report, idles out after the explicit 600 ms
    // patience (~1305 ms) — well before the rebirth gather deadline
    // (600 ms round timeout + 400 ms backoff + 600 ms gather = 1600 ms).
    // The stale report lands during the backoff, so the rebirth gather
    // dequeues it first and must count it in `epochs_dropped`. The short
    // patience also makes the *healthy* slaves give up during the long
    // rebirth round, so it must be the final round: nothing further is
    // asked of them, and their early exit is the benign kind the master
    // never observes.
    let inst = small_instance();
    let cfg = RunConfig {
        p: 4,
        rounds: 2,
        report_timeout: Duration::from_millis(600),
        max_restarts: 2,
        restart_backoff: Duration::from_millis(400),
        slave_patience: Some(Duration::from_millis(600)),
        ..RunConfig::new(60_000, 17)
    };
    let mut engine = Engine::new(4);
    engine.inject_fault(fault_at_round(
        1,
        1,
        FaultAction::Delay(Duration::from_millis(700)),
    ));
    let r = engine.run(&inst, Mode::CooperativeAdaptive, &cfg).unwrap();
    assert!(r.lost_workers.is_empty(), "{:?}", r.lost_workers);
    assert_eq!(r.resurrections.len(), 1, "{:?}", r.resurrections);
    assert_eq!(r.round_best.len(), cfg.rounds);
    let t = &r.telemetry;
    assert_eq!(t.counter(0, Counter::Restarts), 1);
    assert_eq!(
        t.counter(0, Counter::EpochsDropped),
        1,
        "the straggler's stale report must be dropped by epoch"
    );
    // 4 workers x 2 rounds of accepted reports, plus the rebirth redo,
    // minus the one the straggler never usefully delivered.
    assert_eq!(t.counter(0, Counter::ReportsReceived), 8);
}

#[test]
fn resumed_run_matches_the_uninterrupted_run_bit_for_bit() {
    // Acceptance criterion: interrupt-then-resume reproduces the
    // uninterrupted report exactly — objective, solution bits, per-round
    // curve and work counters (wall clock excluded by construction).
    let inst = small_instance();
    let path = snap_path("mid.snap");
    let mut cfg = RunConfig {
        p: 3,
        rounds: 4,
        ..RunConfig::new(60_000, 21)
    };
    for mode in [
        Mode::Cooperative,
        Mode::CooperativeAdaptive,
        Mode::Core,
        Mode::Repair,
    ] {
        let mut engine = Engine::new(3);
        let uninterrupted = engine.run(&inst, mode, &cfg).unwrap();

        cfg.checkpoint = Some(CheckpointCfg {
            path: path.clone(),
            every: 2,
        });
        let checkpointed = engine.run(&inst, mode, &cfg).unwrap();
        assert_eq!(
            checkpointed.best.bits(),
            uninterrupted.best.bits(),
            "{mode:?}: checkpoint writing must not perturb the search"
        );

        // "Interrupt": discard the finished run, continue from the file.
        let snap = Snapshot::load(&path).unwrap();
        assert_eq!(snap.next_round, 2, "{mode:?} snapshot at the wrong round");
        cfg.checkpoint = None;
        let resumed = engine.resume(&inst, snap, &cfg).unwrap();

        assert_eq!(resumed.best.value(), uninterrupted.best.value(), "{mode:?}");
        assert_eq!(resumed.best.bits(), uninterrupted.best.bits(), "{mode:?}");
        assert_eq!(resumed.round_best, uninterrupted.round_best, "{mode:?}");
        assert_eq!(resumed.total_moves, uninterrupted.total_moves, "{mode:?}");
        assert_eq!(resumed.total_evals, uninterrupted.total_evals, "{mode:?}");
        assert_eq!(
            resumed.regenerations, uninterrupted.regenerations,
            "{mode:?}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_survives_a_fault_in_the_original_run() {
    // Lose a worker *after* the checkpoint was written: the snapshot holds
    // the healthy state, and resuming it (without the fault) completes the
    // run cleanly.
    let inst = small_instance();
    let path = snap_path("faulty.snap");
    let mut cfg = healing_cfg(13);
    cfg.rounds = 4;
    cfg.max_restarts = 0; // pure degradation in the original run
    cfg.checkpoint = Some(CheckpointCfg {
        path: path.clone(),
        every: 2,
    });
    let mut engine = Engine::new(4);
    engine.inject_fault(fault_at_round(1, 2, FaultAction::Kill));
    let degraded = engine.run(&inst, Mode::CooperativeAdaptive, &cfg).unwrap();
    assert!(degraded.is_degraded(), "kill after checkpoint must degrade");

    let snap = Snapshot::load(&path).unwrap();
    assert!(
        snap.alive.iter().all(|&a| a),
        "snapshot taken before the kill must see a healthy farm"
    );
    cfg.checkpoint = None;
    let resumed = engine.resume(&inst, snap, &cfg).unwrap();
    assert!(!resumed.is_degraded(), "resume re-runs the lost rounds");
    assert!(resumed.best.is_feasible(&inst));
    assert_eq!(resumed.round_best.len(), cfg.rounds);
    std::fs::remove_file(&path).ok();
}

#[test]
fn snapshot_files_survive_a_byte_for_byte_round_trip() {
    // The on-disk frame is the contract between sessions: load(save(s))
    // must reproduce every field, and the file must re-encode identically.
    let inst = small_instance();
    let path = snap_path("roundtrip.snap");
    let cfg = RunConfig {
        p: 3,
        rounds: 4,
        checkpoint: Some(CheckpointCfg {
            path: path.clone(),
            every: 2,
        }),
        ..RunConfig::new(60_000, 31)
    };
    let mut engine = Engine::new(3);
    engine.run(&inst, Mode::CooperativeAdaptive, &cfg).unwrap();

    let first = std::fs::read(&path).unwrap();
    let snap = Snapshot::load(&path).unwrap();
    let again = snap.to_file_bytes();
    assert_eq!(first, again, "decode→encode changed the file");
    assert_eq!(Snapshot::from_file_bytes(&again).unwrap(), snap);
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_snapshots_are_rejected_never_trusted() {
    let inst = small_instance();
    let path = snap_path("corrupt.snap");
    let cfg = RunConfig {
        p: 3,
        rounds: 4,
        checkpoint: Some(CheckpointCfg {
            path: path.clone(),
            every: 2,
        }),
        ..RunConfig::new(60_000, 37)
    };
    let mut engine = Engine::new(3);
    engine.run(&inst, Mode::CooperativeAdaptive, &cfg).unwrap();
    let good = std::fs::read(&path).unwrap();

    // Flip one byte anywhere: either the checksum or a structural check
    // must reject the file — quietly, not by panicking.
    let step = (good.len() / 24).max(1);
    for i in (0..good.len()).step_by(step) {
        let mut bad = good.clone();
        bad[i] ^= 0x40;
        if bad == good {
            continue;
        }
        match Snapshot::from_file_bytes(&bad) {
            Err(_) => {}
            // A flip inside the payload that still decodes must at least
            // be caught by the checksum — reaching Ok would mean the
            // checksum ignored the payload.
            Ok(_) => panic!("byte {i} flipped yet the snapshot loaded"),
        }
    }
    // Truncation at every prefix length is a clean error too.
    for cut in 0..good.len() {
        assert!(
            Snapshot::from_file_bytes(&good[..cut]).is_err(),
            "prefix of {cut} bytes accepted"
        );
    }
    std::fs::remove_file(&path).ok();
}
