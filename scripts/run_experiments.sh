#!/usr/bin/env bash
# Regenerate every experiment of EXPERIMENTS.md into results/.
# Usage: scripts/run_experiments.sh [--quick]
#   --quick   skip the slowest runs (table2, table3_async, curves)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

mkdir -p results

bins=(fp57 table1 table4_cb ablation_tenure ablation_drop ablation_alpha ablation_neighborhood)
if [[ $quick -eq 0 ]]; then
  bins+=(table2 table3_async table5_baseline curves)
fi

for b in "${bins[@]}"; do
  echo "=== $b ==="
  cargo run --release -p mkp-bench --bin "$b" | tee "results/$b.txt"
done

echo "=== kernel microbenches ==="
cargo run --release -p mkp-bench --bin kernels -- --json results/kernels.json 2>&1 | tee results/kernels.txt

echo "all experiment outputs in results/"
