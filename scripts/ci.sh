#!/usr/bin/env bash
# Offline CI pipeline — the gate every change must pass. Mirrors
# .github/workflows/ci.yml so the same command runs locally and in CI.
#
# The build is fully offline by policy (DESIGN.md §7): no registry
# dependencies, `--offline --locked` throughout. Any step failing fails
# the script.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# One EXIT trap for the whole script: every temp file registers itself in
# CLEANUP_FILES instead of re-arming its own trap (which silently replaced
# the previous one and leaked earlier files on mid-script failure).
# Background processes (the distributed smoke's master and slaves) register
# their PIDs in CLEANUP_PIDS so a mid-step failure never leaves orphans.
CLEANUP_FILES=()
CLEANUP_PIDS=()
cleanup() {
  kill -9 ${CLEANUP_PIDS[@]+"${CLEANUP_PIDS[@]}"} 2>/dev/null || true
  rm -f -- ${CLEANUP_FILES[@]+"${CLEANUP_FILES[@]}"}
}
trap cleanup EXIT
tmpfile() {
  local f
  f="$(mktemp "$1")"
  CLEANUP_FILES+=("$f")
  printf '%s' "$f"
}

# step NAME — close the previous step (printing its elapsed seconds, so a
# slow CI stage is attributable from the log alone) and open the next.
CURRENT_STEP=""
STEP_START=$SECONDS
step() {
  step_done
  CURRENT_STEP="$*"
  STEP_START=$SECONDS
  printf '\n=== %s ===\n' "$*"
}
step_done() {
  if [ -n "$CURRENT_STEP" ]; then
    printf -- '--- %s: %ds\n' "$CURRENT_STEP" "$((SECONDS - STEP_START))"
  fi
  CURRENT_STEP=""
}

step "rustfmt (check only)"
cargo fmt --all -- --check

step "clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline --locked -- -D warnings

step "release build (offline, locked)"
cargo build --release --offline --locked

step "tests (offline)"
cargo test -q --offline --locked

step "telemetry tests (deterministic counters, spans, event ring)"
cargo test -q --offline --locked --test telemetry

step "bench smoke (kernels harness, JSON to results/)"
mkdir -p results
cargo run --release --offline --locked -p mkp-bench --bin kernels -- \
  --smoke --json results/kernels-smoke.json
test -s results/kernels-smoke.json

step "bench regression gate (fresh smoke vs committed baseline)"
# Fails when any kernel median is slower than results/kernels-baseline.json
# beyond ±15%. After a deliberate perf change, re-bless with:
#   cargo run --release -p mkp-bench --bin bench_diff -- --bless
cargo run --release --offline --locked -p mkp-bench --bin bench_diff

step "engine smoke (all six modes, quick budget)"
tmp_mkp="$(tmpfile /tmp/ci-smoke-XXXXXX.mkp)"
cargo run --release --offline --locked -p mkp-cli -- \
  generate "$tmp_mkp" --class gk --n 40 --m 5 --seed 7
for mode in seq its cts1 cts2 ats dts; do
  cargo run --release --offline --locked -p mkp-cli -- \
    solve "$tmp_mkp" --mode "$mode" --p 2 --rounds 2 --budget 40000 --seed 1 \
    | grep -q '^best value' || { echo "error: mode $mode smoke failed" >&2; exit 1; }
done

step "policy smoke (core and repair, incl. a healed mid-run kill)"
# The two promising-search-space policies behind --policy: a plain run of
# each must print a result and exit 0, and a CORE run that loses a worker
# to a kill fault must heal through the restart budget — survivors finish,
# zero losses, exit 0.
for policy in core repair; do
  cargo run --release --offline --locked -p mkp-cli -- \
    solve "$tmp_mkp" --policy "$policy" --p 2 --rounds 2 --budget 40000 --seed 1 \
    | grep -q '^best value' \
    || { echo "error: policy $policy smoke failed" >&2; exit 1; }
done
out="$(cargo run --release --offline --locked -p mkp-cli -- \
  solve "$tmp_mkp" --policy core --p 4 --rounds 3 --budget 60000 --seed 1 \
  --timeout 2 --fault kill@1:1 --restarts 2 --backoff 10 2>&1)" \
  || { echo "error: policy fault smoke exited non-zero" >&2; echo "$out" >&2; exit 1; }
echo "$out" | grep -q '^resurrections: ' \
  || { echo "error: policy fault smoke never revived the worker" >&2; exit 1; }
if echo "$out" | grep -q '^lost workers'; then
  echo "error: policy fault smoke still lost workers" >&2
  echo "$out" >&2
  exit 1
fi

step "telemetry smoke (metrics dumped, validated, deterministic)"
# One synchronous mode and the sequential baseline: each must dump a
# metrics document the in-tree validator accepts, and two identically
# seeded runs must produce byte-identical files.
tmp_m1="$(tmpfile /tmp/ci-metrics-XXXXXX.json)"
tmp_m2="$(tmpfile /tmp/ci-metrics-XXXXXX.json)"
for mode in seq cts1; do
  cargo run --release --offline --locked -p mkp-cli -- \
    solve "$tmp_mkp" --mode "$mode" --p 2 --rounds 2 --budget 40000 --seed 1 \
    --metrics "$tmp_m1" > /dev/null
  cargo run --release --offline --locked -p mkp-cli -- \
    solve "$tmp_mkp" --mode "$mode" --p 2 --rounds 2 --budget 40000 --seed 1 \
    --metrics "$tmp_m2" > /dev/null
  cmp -s "$tmp_m1" "$tmp_m2" \
    || { echo "error: mode $mode metrics are not deterministic" >&2; exit 1; }
  cargo run --release --offline --locked -p mkp-cli -- \
    validate-metrics "$tmp_m1" \
    || { echo "error: mode $mode metrics failed validation" >&2; exit 1; }
done

step "telemetry overhead smoke (A/B harness runs, JSON to results/)"
cargo run --release --offline --locked -p mkp-bench --bin telemetry_overhead -- \
  --smoke --json results/telemetry-overhead-smoke.json
test -s results/telemetry-overhead-smoke.json

step "fault-injection smoke (degraded runs finish and exit 2)"
# One mode per delivery kind: cts2 gathers synchronously, ats is
# pipelined. Killing worker 1 mid-run must leave a finished, degraded
# run: result printed, losses listed, exit code 2.
for mode in cts2 ats; do
  set +e
  out="$(cargo run --release --offline --locked -p mkp-cli -- \
    solve "$tmp_mkp" --mode "$mode" --p 4 --rounds 3 --budget 60000 --seed 1 \
    --timeout 2 --fault kill@1:1 2>&1)"
  status=$?
  set -e
  if [ "$status" -ne 2 ]; then
    echo "error: mode $mode fault smoke exited $status (want 2)" >&2
    echo "$out" >&2
    exit 1
  fi
  echo "$out" | grep -q '^best value' \
    || { echo "error: mode $mode fault smoke lost the result" >&2; exit 1; }
  echo "$out" | grep -q '^lost workers: 1' \
    || { echo "error: mode $mode fault smoke did not report the loss" >&2; exit 1; }
done

step "resurrection smoke (restart budget heals the kill, exit 0)"
# Same kill as above, but with a restart budget: the master must resurrect
# the worker, finish with zero losses and exit clean.
for mode in cts2 ats; do
  out="$(cargo run --release --offline --locked -p mkp-cli -- \
    solve "$tmp_mkp" --mode "$mode" --p 4 --rounds 3 --budget 60000 --seed 1 \
    --timeout 2 --fault kill@1:1 --restarts 2 --backoff 10 2>&1)" \
    || { echo "error: mode $mode resurrection smoke exited non-zero" >&2; \
         echo "$out" >&2; exit 1; }
  echo "$out" | grep -q '^resurrections: ' \
    || { echo "error: mode $mode resurrection smoke never revived" >&2; exit 1; }
  if echo "$out" | grep -q '^lost workers'; then
    echo "error: mode $mode resurrection smoke still lost workers" >&2
    echo "$out" >&2
    exit 1
  fi
done

step "checkpoint/resume smoke (resume outlives a post-checkpoint kill)"
# Reference run, uninterrupted. Then the same run checkpointed at round 2
# and killed at round 2 — after the snapshot is on disk — so the original
# degrades (exit 2) while the file still holds the healthy state. Resuming
# it must reproduce the reference objective exactly.
tmp_snap="$(tmpfile /tmp/ci-snap-XXXXXX)"
full="$(cargo run --release --offline --locked -p mkp-cli -- \
  solve "$tmp_mkp" --mode cts2 --p 4 --rounds 4 --budget 60000 --seed 1 \
  | grep '^best value')"
set +e
cargo run --release --offline --locked -p mkp-cli -- \
  solve "$tmp_mkp" --mode cts2 --p 4 --rounds 4 --budget 60000 --seed 1 \
  --timeout 2 --fault kill@1:2 \
  --checkpoint "$tmp_snap" --checkpoint-every 2 > /dev/null 2>&1
status=$?
set -e
if [ "$status" -ne 2 ]; then
  echo "error: checkpointed faulty run exited $status (want 2)" >&2
  exit 1
fi
resumed="$(cargo run --release --offline --locked -p mkp-cli -- \
  solve "$tmp_mkp" --mode cts2 --p 4 --rounds 4 --budget 60000 --seed 1 \
  --resume "$tmp_snap" | grep '^best value')"
if [ "$full" != "$resumed" ]; then
  echo "error: resume diverged: full='$full' resumed='$resumed'" >&2
  exit 1
fi

step "distributed smoke (two slave processes, one killed mid-run)"
# Real process boundaries over a Unix socket: a master with --listen, two
# `mkp slave` processes, SIGKILL one mid-run and start a replacement. The
# master must resurrect the worker over the fresh connection and exit 0.
# The budget is sized so the run takes seconds — long enough that the kill
# at 1s always lands mid-run, on this machine and on slower CI runners.
mkp_bin=target/release/mkp
tmp_sock="$(tmpfile /tmp/ci-dist-XXXXXX.sock)"
tmp_dist="$(tmpfile /tmp/ci-dist-XXXXXX.out)"
"$mkp_bin" solve "$tmp_mkp" --mode cts2 --p 2 --rounds 6 --budget 240000000 \
  --seed 1 --timeout 5 --restarts 2 --backoff 10 \
  --listen "unix:$tmp_sock" > "$tmp_dist" 2>&1 &
master_pid=$!
CLEANUP_PIDS+=("$master_pid")
"$mkp_bin" slave --connect "unix:$tmp_sock" > /dev/null 2>&1 &
victim_pid=$!
CLEANUP_PIDS+=("$victim_pid")
"$mkp_bin" slave --connect "unix:$tmp_sock" > /dev/null 2>&1 &
survivor_pid=$!
CLEANUP_PIDS+=("$survivor_pid")
sleep 1
kill -9 "$victim_pid" 2>/dev/null \
  || { echo "error: distributed run finished before the kill; raise --budget" >&2; \
       cat "$tmp_dist" >&2; exit 1; }
"$mkp_bin" slave --connect "unix:$tmp_sock" > /dev/null 2>&1 &
replacement_pid=$!
CLEANUP_PIDS+=("$replacement_pid")
set +e
wait "$master_pid"
status=$?
set -e
if [ "$status" -ne 0 ]; then
  echo "error: distributed master exited $status (want 0)" >&2
  cat "$tmp_dist" >&2
  exit 1
fi
grep -q '^best value' "$tmp_dist" \
  || { echo "error: distributed smoke lost the result" >&2; cat "$tmp_dist" >&2; exit 1; }
grep -q '^resurrections: ' "$tmp_dist" \
  || { echo "error: distributed smoke never revived the killed slave" >&2; \
       cat "$tmp_dist" >&2; exit 1; }
if grep -q '^lost workers' "$tmp_dist"; then
  echo "error: distributed smoke still lost workers" >&2
  cat "$tmp_dist" >&2
  exit 1
fi
# The surviving and replacement slaves both saw the STOP broadcast.
for pid in "$survivor_pid" "$replacement_pid"; do
  set +e
  wait "$pid"
  status=$?
  set -e
  if [ "$status" -ne 0 ]; then
    echo "error: slave $pid exited $status (want 0 after STOP)" >&2
    exit 1
  fi
done

step "jobserver smoke (3 concurrent jobs over 2 slave processes)"
# Multi-tenant serving end to end (DESIGN.md §14): a job server farming
# to two slave processes, three concurrent submits — two that complete
# and one whose 1 ms deadline must expire at a quantum boundary. Checks
# the per-client stream ordering, the per-verdict exit codes, and that
# server and slaves all shut down with exit 0.
tmp_jobs_sock="$(tmpfile /tmp/ci-jobs-XXXXXX.sock)"
tmp_slv_sock="$(tmpfile /tmp/ci-jslv-XXXXXX.sock)"
tmp_serve="$(tmpfile /tmp/ci-serve-XXXXXX.out)"
tmp_sub_a="$(tmpfile /tmp/ci-suba-XXXXXX.out)"
tmp_sub_b="$(tmpfile /tmp/ci-subb-XXXXXX.out)"
tmp_sub_c="$(tmpfile /tmp/ci-subc-XXXXXX.out)"
rm -f "$tmp_jobs_sock" "$tmp_slv_sock"   # mktemp made plain files; the sockets bind fresh
"$mkp_bin" serve --clients "unix:$tmp_jobs_sock" --slaves "unix:$tmp_slv_sock" \
  --p 2 --max-jobs 3 --patience 60 > "$tmp_serve" 2>&1 &
serve_pid=$!
CLEANUP_PIDS+=("$serve_pid")
"$mkp_bin" slave --connect "unix:$tmp_slv_sock" --patience 60 > /dev/null 2>&1 &
jslave1_pid=$!
CLEANUP_PIDS+=("$jslave1_pid")
"$mkp_bin" slave --connect "unix:$tmp_slv_sock" --patience 60 > /dev/null 2>&1 &
jslave2_pid=$!
CLEANUP_PIDS+=("$jslave2_pid")
"$mkp_bin" submit "$tmp_mkp" --connect "unix:$tmp_jobs_sock" --mode cts2 \
  --p 2 --rounds 4 --budget 1000000 --seed 11 --patience 60 > "$tmp_sub_a" 2>&1 &
sub_a_pid=$!
CLEANUP_PIDS+=("$sub_a_pid")
"$mkp_bin" submit "$tmp_mkp" --connect "unix:$tmp_jobs_sock" --mode cts1 \
  --p 2 --rounds 4 --budget 1000000 --seed 22 --patience 60 > "$tmp_sub_b" 2>&1 &
sub_b_pid=$!
CLEANUP_PIDS+=("$sub_b_pid")
"$mkp_bin" submit "$tmp_mkp" --connect "unix:$tmp_jobs_sock" --mode cts2 \
  --p 2 --rounds 6 --budget 1000000 --seed 33 --deadline-ms 1 --patience 60 \
  > "$tmp_sub_c" 2>&1 &
sub_c_pid=$!
CLEANUP_PIDS+=("$sub_c_pid")
for spec in "$sub_a_pid:$tmp_sub_a" "$sub_b_pid:$tmp_sub_b"; do
  pid="${spec%%:*}"; out="${spec#*:}"
  set +e
  wait "$pid"
  status=$?
  set -e
  if [ "$status" -ne 0 ]; then
    echo "error: completing submit exited $status (want 0)" >&2
    cat "$out" >&2
    exit 1
  fi
  # Stream ordering: acceptance first, then one incumbent per round with
  # strictly increasing round numbers, then the report.
  head -1 "$out" | grep -q '^job .*accepted' \
    || { echo "error: submit stream did not open with the acceptance" >&2; \
         cat "$out" >&2; exit 1; }
  awk '/^incumbent/ { n++; r=$NF+0; if (r <= last) exit 1; last=r }
       END { exit (n == 4) ? 0 : 1 }' "$out" \
    || { echo "error: submit incumbents out of order or missing" >&2; \
         cat "$out" >&2; exit 1; }
  grep -q '^best value' "$out" \
    || { echo "error: submit lost its report" >&2; cat "$out" >&2; exit 1; }
done
set +e
wait "$sub_c_pid"
status=$?
set -e
if [ "$status" -ne 1 ]; then
  echo "error: deadline submit exited $status (want 1)" >&2
  cat "$tmp_sub_c" >&2
  exit 1
fi
grep -q 'deadline' "$tmp_sub_c" \
  || { echo "error: deadline submit did not explain itself" >&2; \
       cat "$tmp_sub_c" >&2; exit 1; }
set +e
wait "$serve_pid"
status=$?
set -e
if [ "$status" -ne 0 ]; then
  echo "error: job server exited $status (want 0 after --max-jobs)" >&2
  cat "$tmp_serve" >&2
  exit 1
fi
grep -q '2 done' "$tmp_serve" && grep -q '1 expired' "$tmp_serve" \
  || { echo "error: job server miscounted its verdicts" >&2; cat "$tmp_serve" >&2; exit 1; }
# Both slaves served all three jobs' slices and saw the shutdown STOP.
for pid in "$jslave1_pid" "$jslave2_pid"; do
  set +e
  wait "$pid"
  status=$?
  set -e
  if [ "$status" -ne 0 ]; then
    echo "error: jobserver slave $pid exited $status (want 0 after STOP)" >&2
    exit 1
  fi
done

step "server-crash smoke (kill -9 mid-job, restart recovers bit-identically)"
# Crash-safety end to end (DESIGN.md §15): three jobs against a --state-dir
# server, SIGKILL the server mid-run, restart it on the same state dir. The
# journal replays, the spool restores, the clients' idempotent resubmits
# reattach on their own, and every job's value matches an uninterrupted
# reference run exactly.
tmp_crash_sock="$(tmpfile /tmp/ci-crash-XXXXXX.sock)"
tmp_crash_slv="$(tmpfile /tmp/ci-crash-slv-XXXXXX.sock)"
tmp_state_dir="$(mktemp -d /tmp/ci-crash-state-XXXXXX)"
tmp_crash_srv="$(tmpfile /tmp/ci-crash-srv-XXXXXX.out)"
rm -f "$tmp_crash_sock" "$tmp_crash_slv"
crash_seeds="11 22 33"
declare -A crash_ref
for seed in $crash_seeds; do
  crash_ref[$seed]="$("$mkp_bin" solve "$tmp_mkp" --mode cts2 --p 2 --rounds 4 \
    --budget 150000000 --seed "$seed" | grep '^best value')"
done
"$mkp_bin" serve --clients "unix:$tmp_crash_sock" --slaves "unix:$tmp_crash_slv" \
  --p 2 --quantum 1 --max-jobs 3 --state-dir "$tmp_state_dir" --patience 60 \
  > /dev/null 2>&1 &
crash_srv_pid=$!
CLEANUP_PIDS+=("$crash_srv_pid")
# The slave fleet outlives the server crash: a dropped link sends each
# slave back into its reconnect loop, and the restarted server adopts
# the same two processes.
"$mkp_bin" slave --connect "unix:$tmp_crash_slv" --patience 60 > /dev/null 2>&1 &
crash_slv1_pid=$!
CLEANUP_PIDS+=("$crash_slv1_pid")
"$mkp_bin" slave --connect "unix:$tmp_crash_slv" --patience 60 > /dev/null 2>&1 &
crash_slv2_pid=$!
CLEANUP_PIDS+=("$crash_slv2_pid")
crash_sub_pids=()
crash_sub_outs=()
for seed in $crash_seeds; do
  out="$(tmpfile /tmp/ci-crash-sub-XXXXXX.out)"
  "$mkp_bin" submit "$tmp_mkp" --connect "unix:$tmp_crash_sock" --mode cts2 \
    --p 2 --rounds 4 --budget 150000000 --seed "$seed" --patience 60 \
    > "$out" 2>&1 &
  crash_sub_pids+=("$!")
  crash_sub_outs+=("$out")
  CLEANUP_PIDS+=("$!")
done
sleep 1.5
kill -9 "$crash_srv_pid" 2>/dev/null \
  || { echo "error: job server finished before the kill; raise --budget" >&2; exit 1; }
wait "$crash_srv_pid" 2>/dev/null || true
# Restart on the same state dir; recovery counts the journal's terminals,
# so the same --max-jobs 3 still stops after three total.
"$mkp_bin" serve --clients "unix:$tmp_crash_sock" --slaves "unix:$tmp_crash_slv" \
  --p 2 --quantum 1 --max-jobs 3 --state-dir "$tmp_state_dir" --patience 60 \
  > "$tmp_crash_srv" 2>&1 &
crash_srv2_pid=$!
CLEANUP_PIDS+=("$crash_srv2_pid")
i=0
for seed in $crash_seeds; do
  pid="${crash_sub_pids[$i]}"; out="${crash_sub_outs[$i]}"; i=$((i + 1))
  set +e
  wait "$pid"
  status=$?
  set -e
  if [ "$status" -ne 0 ]; then
    echo "error: crash-smoke submit (seed $seed) exited $status (want 0)" >&2
    cat "$out" >&2
    cat "$tmp_crash_srv" >&2
    exit 1
  fi
  got="$(grep '^best value' "$out")"
  if [ "$got" != "${crash_ref[$seed]}" ]; then
    echo "error: crash-smoke seed $seed diverged: got '$got' want '${crash_ref[$seed]}'" >&2
    exit 1
  fi
done
set +e
wait "$crash_srv2_pid"
status=$?
set -e
if [ "$status" -ne 0 ]; then
  echo "error: restarted job server exited $status (want 0)" >&2
  cat "$tmp_crash_srv" >&2
  exit 1
fi
grep -q 'recovered' "$tmp_crash_srv" \
  || { echo "error: restarted server printed no durability line" >&2; \
       cat "$tmp_crash_srv" >&2; exit 1; }
if grep -q 'durability : 0 recovered' "$tmp_crash_srv"; then
  echo "error: the restart recovered nothing — the kill landed too late" >&2
  cat "$tmp_crash_srv" >&2
  exit 1
fi
# Both slave processes rode out the crash and saw the final STOP.
for pid in "$crash_slv1_pid" "$crash_slv2_pid"; do
  set +e
  wait "$pid"
  status=$?
  set -e
  if [ "$status" -ne 0 ]; then
    echo "error: crash-smoke slave $pid exited $status (want 0 after STOP)" >&2
    exit 1
  fi
done
rm -rf "$tmp_state_dir"

step "net-fault smoke (corrupted frame is dropped, counted, and healed)"
# A slave that corrupts its 2nd data frame: the master's checksum catches
# it, drops the frame (counted as corrupt_drops in --metrics), times the
# silent worker out, and heals it through the restart budget — exit 0.
tmp_nf_sock="$(tmpfile /tmp/ci-nf-XXXXXX.sock)"
tmp_nf_out="$(tmpfile /tmp/ci-nf-XXXXXX.out)"
tmp_nf_metrics="$(tmpfile /tmp/ci-nf-XXXXXX.json)"
rm -f "$tmp_nf_sock"
"$mkp_bin" solve "$tmp_mkp" --mode cts2 --p 2 --rounds 3 --budget 60000 \
  --seed 1 --timeout 3 --restarts 2 --backoff 10 --listen "unix:$tmp_nf_sock" \
  --metrics "$tmp_nf_metrics" > "$tmp_nf_out" 2>&1 &
nf_master_pid=$!
CLEANUP_PIDS+=("$nf_master_pid")
"$mkp_bin" slave --connect "unix:$tmp_nf_sock" --net-fault corrupt@2 \
  > /dev/null 2>&1 &
CLEANUP_PIDS+=("$!")
"$mkp_bin" slave --connect "unix:$tmp_nf_sock" > /dev/null 2>&1 &
CLEANUP_PIDS+=("$!")
set +e
wait "$nf_master_pid"
status=$?
set -e
if [ "$status" -ne 0 ]; then
  echo "error: net-fault master exited $status (want 0)" >&2
  cat "$tmp_nf_out" >&2
  exit 1
fi
grep -q '^best value' "$tmp_nf_out" \
  || { echo "error: net-fault smoke lost the result" >&2; cat "$tmp_nf_out" >&2; exit 1; }
grep -q '"corrupt_drops": [1-9]' "$tmp_nf_metrics" \
  || { echo "error: the corrupt frame was never counted" >&2; \
       cat "$tmp_nf_metrics" >&2; exit 1; }

step "jobserver bench (smoke)"
cargo run -q --release --offline --locked -p mkp-bench --bin jobserver_bench -- --smoke
test -s results/jobserver-bench.json \
  || { echo "error: jobserver bench wrote no JSON" >&2; exit 1; }
grep -q '"jobs_per_sec"' results/jobserver-bench.json \
  && grep -q '"time_to_target_p95_ms"' results/jobserver-bench.json \
  || { echo "error: jobserver bench JSON is missing its headline figures" >&2; \
       cat results/jobserver-bench.json >&2; exit 1; }

step "no versioned registry dependencies"
if grep -rn '^[a-z].*=.*"[0-9]' crates/*/Cargo.toml Cargo.toml; then
  echo "error: versioned registry dependency found (policy: DESIGN.md §7)" >&2
  exit 1
fi

step_done
printf '\nci: all checks passed\n'
